// Unit tests for the discrete-event simulator, CPU model, and coroutines.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/frame_arena.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/sim/small_fn.h"
#include "src/sim/task.h"

namespace farm {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(30, [&]() { order.push_back(3); });
  sim.After(10, [&]() { order.push_back(1); });
  sim.After(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(100, [&, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.After(50, [&]() { fired++; });
  sim.After(150, [&]() { fired++; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  SimTime second_fire = 0;
  sim.After(10, [&]() { sim.After(10, [&]() { second_fire = sim.Now(); }); });
  sim.Run();
  EXPECT_EQ(second_fire, 20u);
}

TEST(HwThreadTest, SerializesWork) {
  Simulator sim;
  Machine m(sim, 0, 2, 0);
  std::vector<SimTime> completions;
  m.thread(0).Run(100, [&]() { completions.push_back(sim.Now()); });
  m.thread(0).Run(100, [&]() { completions.push_back(sim.Now()); });
  // Different thread runs in parallel.
  m.thread(1).Run(100, [&]() { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100u);  // thread 0 first item
  EXPECT_EQ(completions[1], 100u);  // thread 1 item, concurrent
  EXPECT_EQ(completions[2], 200u);  // thread 0 second item, queued
}

TEST(HwThreadTest, BacklogReflectsQueueing) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  m.thread(0).Run(1000, []() {});
  EXPECT_EQ(m.thread(0).Backlog(), 1000u);
  sim.Run();
  EXPECT_EQ(m.thread(0).Backlog(), 0u);
}

TEST(HwThreadTest, KilledMachineDropsWork) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  bool ran = false;
  m.thread(0).Run(100, [&]() { ran = true; });
  m.Kill();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(HwThreadTest, RebootDropsPreRebootWork) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  bool old_ran = false;
  bool new_ran = false;
  m.thread(0).Run(100, [&]() { old_ran = true; });
  m.Kill();
  m.Reboot();
  m.thread(0).Run(100, [&]() { new_ran = true; });
  sim.Run();
  EXPECT_FALSE(old_ran);  // scheduled under the old epoch
  EXPECT_TRUE(new_ran);
}

TEST(TaskTest, BasicCoroutineCompletes) {
  Simulator sim;
  int result = 0;
  auto coro = [&]() -> Task<void> {
    co_await SleepFor(sim, 100);
    result = 7;
  };
  Spawn(coro());
  EXPECT_EQ(result, 0);
  sim.Run();
  EXPECT_EQ(result, 7);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(TaskTest, NestedTasksReturnValues) {
  Simulator sim;
  int result = 0;
  auto inner = [&](int x) -> Task<int> {
    co_await SleepFor(sim, 10);
    co_return x * 2;
  };
  auto outer = [&]() -> Task<void> {
    int a = co_await inner(21);
    result = a;
  };
  Spawn(outer());
  sim.Run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, FutureSetBeforeAwait) {
  Simulator sim;
  Future<int> f;
  f.Set(5);
  int got = 0;
  auto coro = [&]() -> Task<void> { got = co_await f; };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(got, 5);
}

TEST(TaskTest, FutureSetAfterAwait) {
  Simulator sim;
  Future<int> f;
  int got = 0;
  auto coro = [&]() -> Task<void> { got = co_await f; };
  Spawn(coro());
  sim.After(100, [&]() { f.Set(9); });
  sim.Run();
  EXPECT_EQ(got, 9);
}

TEST(TaskTest, WaitGroupGathersAll) {
  Simulator sim;
  WaitGroup wg;
  int done_at = -1;
  for (int i = 1; i <= 3; i++) {
    wg.Add();
    sim.After(static_cast<SimDuration>(i * 100), [wg]() { wg.Done(); });
  }
  auto coro = [&]() -> Task<void> {
    co_await wg.Wait();
    done_at = static_cast<int>(sim.Now());
  };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(done_at, 300);
}

TEST(TaskTest, WaitGroupAlreadyZero) {
  Simulator sim;
  WaitGroup wg;
  bool done = false;
  auto coro = [&]() -> Task<void> {
    co_await wg.Wait();
    done = true;
  };
  Spawn(coro());
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(TaskTest, AwaitWithTimeoutValueWins) {
  Simulator sim;
  Future<int> f;
  std::optional<int> got;
  auto coro = [&]() -> Task<void> { got = co_await AwaitWithTimeout(sim, f, 1000); };
  Spawn(coro());
  sim.After(100, [&]() { f.Set(3); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3);
}

TEST(TaskTest, AwaitWithTimeoutTimerWins) {
  Simulator sim;
  Future<int> f;
  std::optional<int> got = 1;
  bool finished = false;
  auto coro = [&]() -> Task<void> {
    got = co_await AwaitWithTimeout(sim, f, 1000);
    finished = true;
  };
  Spawn(coro());
  sim.After(5000, [&]() {
    if (!f.Ready()) {
      f.Set(3);  // late value must be dropped
    }
  });
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(got.has_value());
}

TEST(TaskTest, ExecuteChargesCpu) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  SimTime end = 0;
  auto coro = [&]() -> Task<void> {
    co_await m.thread(0).Execute(250);
    co_await m.thread(0).Execute(250);
    end = sim.Now();
  };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(end, 500u);
  EXPECT_EQ(m.thread(0).total_busy(), 500u);
}

// NOTE: a coroutine lambda's captures live in the lambda *object*, not the
// coroutine frame. A capturing lambda must therefore outlive its coroutine.
// For loop-spawned coroutines, pass state as parameters instead.
Task<void> SleepAndCount(Simulator& sim, int delay, int& counter) {
  co_await SleepFor(sim, static_cast<SimDuration>(delay));
  counter++;
}

TEST(TaskTest, ManyConcurrentCoroutines) {
  Simulator sim;
  int completed = 0;
  for (int i = 0; i < 1000; i++) {
    Spawn(SleepAndCount(sim, i % 17 + 1, completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 1000);
}

#ifndef FARM_FRAME_ARENA_DISABLED
TEST(TaskTest, CoroutineFramesAreArenaRecycled) {
  // Sequentially churned frames must come back from the arena free lists
  // rather than the allocator. (The arena is compiled out under ASan, where
  // recycling would mask use-after-free on destroyed frames.)
  Simulator sim;
  int completed = 0;
  uint64_t before = FrameArena::recycled_hits();
  for (int i = 0; i < 100; i++) {
    Spawn(SleepAndCount(sim, i + 1, completed));
    sim.Run();  // the i-th frames are destroyed before the (i+1)-th allocate
  }
  EXPECT_EQ(completed, 100);
  // The frames all have the same size classes, so after the first iteration
  // every frame allocation is a free-list pop.
  EXPECT_GT(FrameArena::recycled_hits(), before);
}
#endif

TEST(SmallFnTest, InlineAndHeapCallablesRunAndDestroy) {
  // A capture over the inline budget takes the heap path; both paths must
  // run exactly once and destroy their captures exactly once.
  auto witness_small = std::make_shared<int>(0);
  auto witness_big = std::make_shared<int>(0);
  {
    SmallFn small = [witness_small]() { (*witness_small)++; };
    struct Big {
      std::shared_ptr<int> w;
      uint64_t pad[8];  // 64 bytes of padding: forces the heap path
      void operator()() { (*w)++; }
    };
    SmallFn big = Big{witness_big, {}};
    SmallFn moved = std::move(small);
    EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
    moved();
    big();
    EXPECT_EQ(*witness_small, 1);
    EXPECT_EQ(*witness_big, 1);
  }
  EXPECT_EQ(witness_small.use_count(), 1);  // capture destroyed
  EXPECT_EQ(witness_big.use_count(), 1);
}

// Regression for the old priority_queue event loop, which moved closures out
// of top() through a const_cast (undefined behavior) and corrupted the heap
// if a closure scheduled reentrantly mid-pop. A million pops where every
// closure reschedules exercises slot recycling and heap re-linking; the
// sanitizer CI job runs this under ASan/UBSan.
TEST(SimulatorTest, MillionReentrantPops) {
  Simulator sim;
  constexpr uint64_t kChains = 64;
  constexpr uint64_t kPerChain = 1'000'000 / kChains;
  uint64_t fired = 0;
  struct Chain {
    Simulator* sim;
    uint64_t* fired;
    uint64_t left;
    uint64_t salt;
    void operator()() {
      (*fired)++;
      if (left > 0) {
        sim->After(1 + (salt * 2654435761ULL + left) % 13, Chain{sim, fired, left - 1, salt});
      }
    }
  };
  for (uint64_t s = 0; s < kChains; s++) {
    sim.After(s % 7, Chain{&sim, &fired, kPerChain - 1, s});
  }
  sim.Run();
  EXPECT_EQ(fired, kChains * kPerChain);
  EXPECT_EQ(sim.events_processed(), kChains * kPerChain);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ThrowingClosureLeavesQueueConsistent) {
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(20, []() { throw std::runtime_error("boom"); });
  sim.At(30, [&]() { order.push_back(3); });
  EXPECT_TRUE(sim.Step());
  EXPECT_THROW(sim.Step(), std::runtime_error);
  // The throwing event was popped and its slot released before it ran, so
  // the clock advanced, the queue holds only the remaining event, and new
  // work can still be scheduled and interleaves correctly.
  EXPECT_EQ(sim.Now(), 20u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.At(25, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 4u);
}

// Property: among events scheduled for the same timestamp -- from any mix of
// outer code and reentrant closures -- firing order equals scheduling order.
// Timestamps are drawn from a small window to force heavy collisions.
TEST(SimulatorTest, EqualTimestampFifoProperty) {
  Simulator sim;
  std::vector<std::pair<SimTime, uint64_t>> log;
  uint64_t scheduled = 0;
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  struct Ev {
    Simulator* sim;
    std::vector<std::pair<SimTime, uint64_t>>* log;
    uint64_t* scheduled;
    uint64_t* rng;
    uint64_t idx;
    int depth;
    void operator()() {
      log->push_back({sim->Now(), idx});
      if (depth >= 5) {
        return;
      }
      for (int k = 0; k < 2; k++) {
        *rng = *rng * 6364136223846793005ULL + 1442695040888963407ULL;
        SimDuration d = (*rng >> 33) % 3;  // collide with siblings and peers
        sim->After(d, Ev{sim, log, scheduled, rng, (*scheduled)++, depth + 1});
      }
    }
  };
  for (int i = 0; i < 40; i++) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    sim.At((rng >> 33) % 4, Ev{&sim, &log, &scheduled, &rng, scheduled, 0});
    scheduled++;
  }
  sim.Run();
  ASSERT_EQ(log.size(), sim.events_processed());
  size_t collisions = 0;
  for (size_t i = 1; i < log.size(); i++) {
    ASSERT_LE(log[i - 1].first, log[i].first);  // time order
    if (log[i - 1].first == log[i].first) {
      collisions++;
      // FIFO tie-break: scheduling index decides among equal timestamps.
      EXPECT_LT(log[i - 1].second, log[i].second)
          << "FIFO violated at t=" << log[i].first;
    }
  }
  EXPECT_GT(collisions, 100u);  // the property was actually exercised
}

}  // namespace
}  // namespace farm
