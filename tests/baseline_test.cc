// Tests for the baseline systems (single-machine OCC and 2PC/Paxos).
#include <gtest/gtest.h>

#include "src/baseline/local_occ.h"
#include "src/baseline/twopc.h"
#include "src/nvram/nvram.h"

namespace farm {
namespace {

TEST(LocalOccTest, CommitsAndAdvancesVersions) {
  Simulator sim;
  Machine machine(sim, 0, 4, 0);
  LocalOccEngine engine(sim, machine, CostModel{}, LocalOccEngine::Options{});
  engine.Seed(1, 32);
  engine.Seed(2, 32);

  auto run = [&]() -> Task<void> {
    std::vector<uint64_t> r1 = {1, 2};
    std::vector<uint64_t> w1 = {1};
    bool ok = co_await engine.RunTx(0, r1, w1, 32);
    EXPECT_TRUE(ok);
    std::vector<uint64_t> r2 = {2};
    bool ok2 = co_await engine.RunTx(1, r2, r2, 32);
    EXPECT_TRUE(ok2);
  };
  Spawn(run());
  sim.Run();
  EXPECT_EQ(engine.committed(), 2u);
  EXPECT_EQ(engine.aborted(), 0u);
}

TEST(LocalOccTest, ConflictingWritersOneAborts) {
  Simulator sim;
  Machine machine(sim, 0, 4, 0);
  LocalOccEngine::Options opts;
  opts.logging = true;
  LocalOccEngine engine(sim, machine, CostModel{}, opts);
  engine.Seed(7, 32);

  int commits = 0;
  auto writer = [&](int thread) -> Task<void> {
    std::vector<uint64_t> keys = {7};
    bool ok = co_await engine.RunTx(thread, keys, keys, 32);
    if (ok) {
      commits++;
    }
  };
  // Both transactions overlap in simulated time (logging delays commit).
  Spawn(writer(0));
  Spawn(writer(1));
  sim.Run();
  EXPECT_GE(commits, 1);
  EXPECT_EQ(engine.committed() + engine.aborted(), 2u);
}

TEST(LocalOccTest, LoggingAddsLatency) {
  Simulator sim;
  Machine machine(sim, 0, 2, 0);
  LocalOccEngine::Options with_log;
  with_log.logging = true;
  LocalOccEngine logged(sim, machine, CostModel{}, with_log);
  SimTime t_logged = 0;
  auto run1 = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {1};
    (void)co_await logged.RunTx(0, keys, keys, 32);
    t_logged = sim.Now();
  };
  Spawn(run1());
  sim.Run();
  // Group commit: at least flush interval + SSD latency.
  EXPECT_GE(t_logged, with_log.log_flush_interval + with_log.ssd_flush_latency);

  Simulator sim2;
  Machine machine2(sim2, 0, 2, 0);
  LocalOccEngine::Options no_log;
  no_log.logging = false;
  LocalOccEngine unlogged(sim2, machine2, CostModel{}, no_log);
  SimTime t_unlogged = 0;
  auto run2 = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {1};
    (void)co_await unlogged.RunTx(0, keys, keys, 32);
    t_unlogged = sim2.Now();
  };
  Spawn(run2());
  sim2.Run();
  EXPECT_LT(t_unlogged, t_logged);
}

class TwoPcTest : public ::testing::Test {
 protected:
  static constexpr int kMachines = 13;  // 3 groups x 3 + coordinator group x 3 + client

  TwoPcTest() : fabric_(sim_, CostModel{}) {
    for (MachineId i = 0; i < kMachines; i++) {
      machines_.push_back(std::make_unique<Machine>(sim_, i, 4, static_cast<int>(i)));
      stores_.push_back(std::make_unique<NvramStore>());
      fabric_.AddMachine(machines_.back().get(), stores_.back().get());
    }
    std::vector<MachineId> members;
    for (MachineId i = 0; i < 12; i++) {
      members.push_back(i);
    }
    system_ = std::make_unique<TwoPcSystem>(fabric_, members, TwoPcSystem::Options{});
  }

  Simulator sim_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<NvramStore>> stores_;
  std::unique_ptr<TwoPcSystem> system_;
};

TEST_F(TwoPcTest, CommitsAcrossGroups) {
  bool done = false;
  auto run = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {1, 2, 3};  // spans all three groups
    bool ok = co_await system_->RunTx(12, keys);
    EXPECT_TRUE(ok);
    done = true;
  };
  Spawn(run());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(system_->committed(), 1u);
}

TEST_F(TwoPcTest, MessageCountMatchesAnalysis) {
  // One transaction writing one key in each of P=3 groups with 2f+1=3
  // replicas: prepare (1 rpc + 2 replication rpcs) and commit (1 + 2) per
  // participant, plus the coordinator decision (1 + 2). Each RPC is two
  // messages on the wire.
  fabric_.ResetStats();
  auto run = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {1, 2, 3};
    (void)co_await system_->RunTx(12, keys);
  };
  Spawn(run());
  sim_.Run();
  uint64_t rpcs = fabric_.stats().rpcs;
  // P participants: 2 phases x (1 leader rpc + 2 follower rpcs) = 18, plus
  // coordinator decision: 1 + 2 = 3. Total 21 RPCs = 42 messages.
  EXPECT_EQ(rpcs, 21u);
  // The paper's formula: 4P(2f+1) = 4*3*3 = 36 messages -- the same order;
  // our flow batches the client into the coordinator role.
  EXPECT_GE(2 * rpcs, 36u);
}

TEST_F(TwoPcTest, FollowerFailureStillCommitsWithMajority) {
  machines_[1]->Kill();  // a follower in group 0
  bool ok_out = false;
  auto run = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {0};  // group 0 only
    ok_out = co_await system_->RunTx(12, keys);
  };
  Spawn(run());
  sim_.Run();
  EXPECT_TRUE(ok_out);
}

TEST_F(TwoPcTest, LeaderFailureAborts) {
  machines_[0]->Kill();  // leader of group 0 (no leader failover modeled)
  bool ok_out = true;
  auto run = [&]() -> Task<void> {
    std::vector<uint64_t> keys = {0};
    ok_out = co_await system_->RunTx(12, keys);
  };
  Spawn(run());
  sim_.Run();
  EXPECT_FALSE(ok_out);
}

}  // namespace
}  // namespace farm
