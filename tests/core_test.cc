// Cluster-level tests for the FaRM core: region creation, the transaction
// protocol (normal case), lock-free reads, allocation, and concurrency
// control semantics.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace farm {
namespace {

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

uint64_t BytesU64(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min<size_t>(8, b.size()));
  return v;
}

class CoreTest : public ::testing::Test {
 protected:
  void Boot(int machines = 4, uint64_t seed = 1) {
    cluster_ = MakeStartedCluster(SmallClusterOptions(machines, seed));
  }

  // Writes a u64 value at addr via a transaction from `node`.
  Task<Status> WriteValue(MachineId node, GlobalAddr addr, uint64_t value) {
    auto tx = cluster_->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    Status ws = tx->Write(addr, U64Bytes(value));
    if (!ws.ok()) {
      co_return ws;
    }
    co_return co_await tx->Commit();
  }

  Task<StatusOr<uint64_t>> ReadValue(MachineId node, GlobalAddr addr) {
    auto tx = cluster_->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return BytesU64(*r);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(CoreTest, CreateRegionPlacesReplicas) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 256 << 10, 16);
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->backups.size(), 2u);  // f+1 = 3 replicas
  // All replicas installed their region memory.
  for (MachineId m : p->Replicas()) {
    EXPECT_NE(cluster_->node(m).replica(rid), nullptr) << "machine " << m;
  }
  // Every node learned the mapping.
  for (int m = 0; m < cluster_->num_machines(); m++) {
    EXPECT_NE(cluster_->node(static_cast<MachineId>(m)).config().Placement(rid), nullptr);
  }
}

TEST_F(CoreTest, RegionsBalanceAcrossMachines) {
  Boot(6);
  std::map<MachineId, int> load;
  for (int i = 0; i < 6; i++) {
    RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
    const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
    ASSERT_NE(p, nullptr);
    for (MachineId m : p->Replicas()) {
      load[m]++;
    }
  }
  // 6 regions x 3 replicas over 6 machines: 3 each.
  for (const auto& [m, n] : load) {
    EXPECT_EQ(n, 3) << "machine " << m;
  }
}

TEST_F(CoreTest, WriteThenReadBack) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 0};

  auto ws = RunTask(*cluster_, WriteValue(0, addr, 1234));
  ASSERT_TRUE(ws.has_value());
  EXPECT_TRUE(ws->ok()) << ws->ToString();

  auto rv = RunTask(*cluster_, ReadValue(0, addr));
  ASSERT_TRUE(rv.has_value());
  ASSERT_TRUE(rv->ok());
  EXPECT_EQ(rv->value(), 1234u);
}

TEST_F(CoreTest, RemoteCoordinatorReadsAndWrites) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 32};
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  // Pick a coordinator that is NOT a replica of the region.
  MachineId coord = kInvalidMachine;
  for (int m = 0; m < cluster_->num_machines(); m++) {
    if (!p->Contains(static_cast<MachineId>(m))) {
      coord = static_cast<MachineId>(m);
      break;
    }
  }
  ASSERT_NE(coord, kInvalidMachine);

  auto ws = RunTask(*cluster_, WriteValue(coord, addr, 777));
  ASSERT_TRUE(ws.has_value());
  EXPECT_TRUE(ws->ok()) << ws->ToString();
  // Readable from yet another machine.
  auto rv = RunTask(*cluster_, ReadValue((coord + 1) % 4, addr));
  ASSERT_TRUE(rv.has_value() && rv->ok());
  EXPECT_EQ(rv->value(), 777u);
}

TEST_F(CoreTest, CommitAdvancesVersionAndReplicatesToBackups) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 0};
  auto ws = RunTask(*cluster_, WriteValue(0, addr, 5));
  ASSERT_TRUE(ws.has_value() && ws->ok());
  ws = RunTask(*cluster_, WriteValue(0, addr, 6));
  ASSERT_TRUE(ws.has_value() && ws->ok());
  // Give truncation (which applies backup updates) time to run.
  cluster_->RunFor(20 * kMillisecond);

  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  RegionReplica* prim = cluster_->node(p->primary).replica(rid);
  ASSERT_NE(prim, nullptr);
  EXPECT_EQ(VersionWord::Version(prim->ReadHeader(0)), 2u);
  for (MachineId b : p->backups) {
    RegionReplica* rep = cluster_->node(b).replica(rid);
    ASSERT_NE(rep, nullptr);
    EXPECT_EQ(VersionWord::Version(rep->ReadHeader(0)), 2u) << "backup " << b;
    uint64_t v = 0;
    std::memcpy(&v, rep->Ptr(8, 8), 8);
    EXPECT_EQ(v, 6u) << "backup " << b;
  }
}

TEST_F(CoreTest, WriteWithoutReadRejected) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  auto tx = cluster_->node(0).Begin(0);
  Status s = tx->Write(GlobalAddr{rid, 0}, U64Bytes(1));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CoreTest, WriteConflictAborts) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 0};

  // Two transactions read the same version, both write: one must abort.
  auto race = [](Cluster* c, GlobalAddr a) -> Task<std::pair<int, int>> {
    auto tx1 = c->node(0).Begin(0);
    auto tx2 = c->node(1).Begin(0);
    auto r1 = co_await tx1->Read(a, 8);
    auto r2 = co_await tx2->Read(a, 8);
    EXPECT_TRUE(r1.ok() && r2.ok());
    (void)tx1->Write(a, U64Bytes(100));
    (void)tx2->Write(a, U64Bytes(200));
    Status s1 = co_await tx1->Commit();
    Status s2 = co_await tx2->Commit();
    int commits = (s1.ok() ? 1 : 0) + (s2.ok() ? 1 : 0);
    int aborts = (s1.code() == StatusCode::kAborted ? 1 : 0) +
                 (s2.code() == StatusCode::kAborted ? 1 : 0);
    co_return std::make_pair(commits, aborts);
  };
  auto result = RunTask(*cluster_, race(cluster_.get(), addr));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->first, 1);
  EXPECT_EQ(result->second, 1);
}

TEST_F(CoreTest, ReadValidationCatchesConcurrentWrite) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  GlobalAddr b{rid, 16};

  // tx reads a and b; a concurrent writer updates a before tx commits.
  auto scenario = [this](GlobalAddr x, GlobalAddr y) -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    auto r1 = co_await tx->Read(x, 8);
    EXPECT_TRUE(r1.ok());
    // Concurrent writer commits an update to x.
    Status ws = co_await WriteValue(0, x, 999);
    EXPECT_TRUE(ws.ok());
    auto r2 = co_await tx->Read(y, 8);
    EXPECT_TRUE(r2.ok());
    (void)tx->Write(y, U64Bytes(1));
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster_, scenario(a, b));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->code(), StatusCode::kAborted);
}

TEST_F(CoreTest, ReadOnlyTransactionValidates) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 42))->ok());

  auto ro = [this](GlobalAddr x) -> Task<Status> {
    auto tx = cluster_->node(2).Begin(0);
    auto r = co_await tx->Read(x, 8);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(BytesU64(*r), 42u);
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster_, ro(a));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok());
}

TEST_F(CoreTest, ValidationOverRpcAboveThreshold) {
  Boot();
  // Keep the whole read set on one primary and exceed t_r = 4.
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  for (uint32_t i = 0; i < 8; i++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, GlobalAddr{rid, i * 16}, i))->ok());
  }
  auto ro = [this, rid]() -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    for (uint32_t i = 0; i < 8; i++) {
      auto r = co_await tx->Read(GlobalAddr{rid, i * 16}, 8);
      EXPECT_TRUE(r.ok());
    }
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster_, ro());
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
}

TEST_F(CoreTest, LockFreeRead) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 314))->ok());

  auto lf = [this](GlobalAddr x) -> Task<StatusOr<std::vector<uint8_t>>> {
    co_return co_await cluster_->node(3).LockFreeRead(x, 8, 0);
  };
  auto v = RunTask(*cluster_, lf(a));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(BytesU64(v->value()), 314u);
  EXPECT_GE(cluster_->node(3).stats().lockfree_reads, 1u);
}

TEST_F(CoreTest, RepeatedReadsReturnSameValue) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 1))->ok());

  auto scenario = [this](GlobalAddr x) -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    auto r1 = co_await tx->Read(x, 8);
    EXPECT_TRUE(r1.ok());
    // Concurrent update commits in between.
    Status ws = co_await WriteValue(0, x, 2);
    EXPECT_TRUE(ws.ok());
    auto r2 = co_await tx->Read(x, 8);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(BytesU64(*r1), BytesU64(*r2));  // same data within the tx
    co_return co_await tx->Commit();          // but validation must fail
  };
  auto s = RunTask(*cluster_, scenario(a));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->code(), StatusCode::kAborted);
}

TEST_F(CoreTest, ReadYourOwnWrites) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  auto scenario = [this](GlobalAddr x) -> Task<Status> {
    auto tx = cluster_->node(0).Begin(0);
    auto r = co_await tx->Read(x, 8);
    EXPECT_TRUE(r.ok());
    (void)tx->Write(x, U64Bytes(55));
    auto r2 = co_await tx->Read(x, 8);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(BytesU64(*r2), 55u);
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster_, scenario(a));
  ASSERT_TRUE(s.has_value() && s->ok());
}

TEST_F(CoreTest, AllocWriteFreeCycle) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 256 << 10, 0);  // slab-managed

  auto scenario = [this](RegionId r) -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    auto addr = co_await tx->Alloc(r, 32);
    EXPECT_TRUE(addr.ok());
    if (!addr.ok()) {
      co_return addr.status();
    }
    std::vector<uint8_t> data(32, 0xcd);
    (void)tx->Write(*addr, data);
    Status s = co_await tx->Commit();
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) {
      co_return s;
    }

    // Read it back and free it in a second transaction.
    auto tx2 = cluster_->node(2).Begin(0);
    auto rd = co_await tx2->Read(*addr, 32);
    EXPECT_TRUE(rd.ok());
    if (rd.ok()) {
      EXPECT_EQ((*rd)[0], 0xcd);
    }
    (void)tx2->Free(*addr);
    co_return co_await tx2->Commit();
  };
  auto s = RunTask(*cluster_, scenario(rid));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
}

TEST_F(CoreTest, AbortedAllocReleasesSlot) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 256 << 10, 0);
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  Node& primary = cluster_->node(p->primary);

  auto scenario = [this, rid]() -> Task<Status> {
    // Conflict on a plain object forces the abort.
    auto tx = cluster_->node(0).Begin(0);
    auto a = co_await tx->Alloc(rid, 32);
    EXPECT_TRUE(a.ok());
    std::vector<uint8_t> d(32, 1);
    (void)tx->Write(*a, d);
    // Sabotage: another tx allocates and commits the same... instead, force
    // a version conflict by writing the object behind tx's back is not
    // possible for a fresh alloc; use a shared object.
    co_return co_await tx->Commit();
  };
  (void)scenario;
  // Simpler: reserve then destroy the transaction without committing.
  size_t free_before = primary.allocator(rid)->FreeSlots();
  auto leak = [this, rid]() -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    auto a = co_await tx->Alloc(rid, 32);
    EXPECT_TRUE(a.ok());
    // Abandon the transaction: its destructor releases the reservation.
    co_return OkStatus();
  };
  auto s = RunTask(*cluster_, leak());
  ASSERT_TRUE(s.has_value());
  cluster_->RunFor(5 * kMillisecond);
  size_t free_after = primary.allocator(rid)->FreeSlots();
  // A block may have been formatted (adding slots); the reserved slot must
  // not be leaked: free count is at least the pre-alloc count.
  EXPECT_GE(free_after + 0, free_before);
}

TEST_F(CoreTest, TransactionsAcrossMultipleRegions) {
  Boot();
  RegionId r1 = MustCreateRegion(*cluster_, 64 << 10, 16);
  RegionId r2 = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{r1, 0};
  GlobalAddr b{r2, 0};

  auto scenario = [this](GlobalAddr x, GlobalAddr y) -> Task<Status> {
    auto tx = cluster_->node(2).Begin(0);
    auto rx = co_await tx->Read(x, 8);
    auto ry = co_await tx->Read(y, 8);
    EXPECT_TRUE(rx.ok() && ry.ok());
    (void)tx->Write(x, U64Bytes(10));
    (void)tx->Write(y, U64Bytes(20));
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster_, scenario(a, b));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
  EXPECT_EQ(RunTask(*cluster_, ReadValue(3, a))->value(), 10u);
  EXPECT_EQ(RunTask(*cluster_, ReadValue(3, b))->value(), 20u);
}

TEST_F(CoreTest, LogsAreTruncatedAfterCommit) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, static_cast<uint64_t>(i)))->ok());
  }
  cluster_->RunFor(50 * kMillisecond);  // flush timers
  // All stored records should be truncated everywhere by now.
  for (int m = 0; m < cluster_->num_machines(); m++) {
    int stored = 0;
    cluster_->node(static_cast<MachineId>(m))
        .messenger()
        .ForEachStoredLog([&](MachineId, uint64_t, const TxLogRecord&) { stored++; });
    EXPECT_EQ(stored, 0) << "machine " << m;
  }
}

// Serializability property test: concurrent increments on a set of counters
// must never lose updates (every committed increment is reflected).
TEST_F(CoreTest, PropertyConcurrentIncrementsNeverLost) {
  Boot(4, 7);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  constexpr int kCounters = 4;
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 25;

  auto committed = std::make_shared<std::vector<uint64_t>>(kCounters, 0);
  auto done = std::make_shared<int>(0);

  auto worker = [](Cluster* c, RegionId r, int widx, std::shared_ptr<std::vector<uint64_t>> acc,
                   std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(static_cast<uint64_t>(widx) * 977 + 13);
    MachineId node = static_cast<MachineId>(widx % c->num_machines());
    int thread = widx % 2;
    for (int i = 0; i < kOpsPerWorker; i++) {
      uint32_t counter = rng.Uniform(kCounters);
      GlobalAddr addr{r, counter * 16};
      auto tx = c->node(node).Begin(thread);
      auto v = co_await tx->Read(addr, 8);
      if (!v.ok()) {
        continue;
      }
      uint64_t cur = 0;
      std::memcpy(&cur, v->data(), 8);
      std::vector<uint8_t> nb(8);
      uint64_t next = cur + 1;
      std::memcpy(nb.data(), &next, 8);
      (void)tx->Write(addr, nb);
      Status s = co_await tx->Commit();
      if (s.ok()) {
        (*acc)[counter]++;
      }
    }
    (*fin)++;
  };

  for (int w = 0; w < kWorkers; w++) {
    Spawn(worker(cluster_.get(), rid, w, committed, done));
  }
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *done == kWorkers; }, 10 * kSecond));

  // Each counter's final value equals the number of committed increments.
  for (int cidx = 0; cidx < kCounters; cidx++) {
    auto v = RunTask(*cluster_, ReadValue(0, GlobalAddr{rid, static_cast<uint32_t>(cidx) * 16}));
    ASSERT_TRUE(v.has_value() && v->ok());
    EXPECT_EQ(v->value(), (*committed)[static_cast<size_t>(cidx)]) << "counter " << cidx;
  }
  // And there was real contention: some transactions aborted.
  EXPECT_GT(cluster_->TotalStats().tx_aborted_lock + cluster_->TotalStats().tx_aborted_validate,
            0u);
}

// Bank-transfer invariant: total money is conserved under concurrent
// transfers (atomicity across two objects).
TEST_F(CoreTest, PropertyBankTransfersConserveTotal) {
  Boot(4, 11);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  constexpr int kAccounts = 6;
  constexpr uint64_t kInitial = 1000;

  for (uint32_t a = 0; a < kAccounts; a++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, GlobalAddr{rid, a * 16}, kInitial))->ok());
  }

  auto done = std::make_shared<int>(0);
  auto transfer = [](Cluster* c, RegionId r, int widx, std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(static_cast<uint64_t>(widx) * 31 + 5);
    MachineId node = static_cast<MachineId>(widx % c->num_machines());
    for (int i = 0; i < 20; i++) {
      uint32_t from = rng.Uniform(kAccounts);
      uint32_t to = rng.Uniform(kAccounts);
      if (from == to) {
        continue;
      }
      auto tx = c->node(node).Begin(widx % 2);
      auto vf = co_await tx->Read(GlobalAddr{r, from * 16}, 8);
      auto vt = co_await tx->Read(GlobalAddr{r, to * 16}, 8);
      if (!vf.ok() || !vt.ok()) {
        continue;
      }
      uint64_t bf = 0;
      uint64_t bt = 0;
      std::memcpy(&bf, vf->data(), 8);
      std::memcpy(&bt, vt->data(), 8);
      uint64_t amount = rng.Uniform(50) + 1;
      if (bf < amount) {
        continue;
      }
      std::vector<uint8_t> nf(8);
      std::vector<uint8_t> nt(8);
      uint64_t nbf = bf - amount;
      uint64_t nbt = bt + amount;
      std::memcpy(nf.data(), &nbf, 8);
      std::memcpy(nt.data(), &nbt, 8);
      (void)tx->Write(GlobalAddr{r, from * 16}, nf);
      (void)tx->Write(GlobalAddr{r, to * 16}, nt);
      (void)co_await tx->Commit();
    }
    (*fin)++;
  };

  constexpr int kWorkers = 5;
  for (int w = 0; w < kWorkers; w++) {
    Spawn(transfer(cluster_.get(), rid, w, done));
  }
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *done == kWorkers; }, 10 * kSecond));

  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; a++) {
    auto v = RunTask(*cluster_, ReadValue(1, GlobalAddr{rid, a * 16}));
    ASSERT_TRUE(v.has_value() && v->ok());
    total += v->value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_F(CoreTest, AdaptiveBackoffGrowsAndDecaysWithConflicts) {
  ClusterOptions opts = SmallClusterOptions(4, 1);
  opts.node.adaptive_backoff = true;
  cluster_ = MakeStartedCluster(opts);
  Node& n = cluster_->node(0);
  TxId id{1, 0, 0, 42};
  // Cold state: no conflicts recorded yet, retry immediately.
  EXPECT_EQ(n.LockBackoffDelay(0, id, {0}), 0u);
  for (int i = 0; i < 8; i++) {
    n.NoteLockOutcome(0, 0, /*conflict=*/true);
  }
  SimDuration hot = n.LockBackoffDelay(0, id, {0});
  EXPECT_GE(hot, opts.node.backoff_base);
  EXPECT_LE(hot, opts.node.backoff_max);
  // Pure function of simulation state: same (clock, tx, thread), same delay.
  EXPECT_EQ(hot, n.LockBackoffDelay(0, id, {0}));
  // The EWMA is per (thread, region) -- another thread stays uncontended.
  EXPECT_EQ(n.LockBackoffDelay(1, id, {0}), 0u);
  // Successes decay the conflict rate back to immediate retries.
  for (int i = 0; i < 64; i++) {
    n.NoteLockOutcome(0, 0, /*conflict=*/false);
  }
  EXPECT_EQ(n.LockBackoffDelay(0, id, {0}), 0u);
}

TEST_F(CoreTest, AdaptiveBackoffOffByDefaultNeverDelays) {
  Boot();
  Node& n = cluster_->node(0);
  for (int i = 0; i < 8; i++) {
    n.NoteLockOutcome(0, 0, /*conflict=*/true);
  }
  EXPECT_EQ(n.LockBackoffDelay(0, TxId{1, 0, 0, 7}, {0}), 0u);
}

TEST_F(CoreTest, ColocatedRegionSharesReplicas) {
  Boot(6);
  RegionId r1 = MustCreateRegion(*cluster_, 64 << 10, 16);
  RegionId r2 = MustCreateRegion(*cluster_, 64 << 10, 16, r1);
  const RegionPlacement* p1 = cluster_->node(0).config().Placement(r1);
  const RegionPlacement* p2 = cluster_->node(0).config().Placement(r2);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->Replicas(), p2->Replicas());
}

}  // namespace
}  // namespace farm
