// Protocol-detail tests: leases, configuration serialization, validation
// thresholds (t_r), zombie-lock cleanup after coordinator death, ring-space
// reclamation under sustained load, and data-recovery content checks.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace farm {
namespace {

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

TEST(ConfigTest, SerializeRoundTrip) {
  Configuration c;
  c.id = 7;
  c.machines = {0, 1, 2, 5};
  c.failure_domains = {{0, 0}, {1, 1}, {2, 0}, {5, 2}};
  c.cm = 1;
  c.next_region_id = 3;
  RegionPlacement p;
  p.primary = 2;
  p.backups = {0, 5};
  p.size = 1 << 20;
  p.last_primary_change = 6;
  p.last_replica_change = 7;
  p.colocate_with = 1;
  p.object_stride = 48;
  c.regions[2] = p;

  Configuration parsed = Configuration::ParseBytes(c.Serialize());
  EXPECT_EQ(parsed.id, 7u);
  EXPECT_EQ(parsed.machines, c.machines);
  EXPECT_EQ(parsed.failure_domains.at(5), 2);
  EXPECT_EQ(parsed.cm, 1u);
  EXPECT_EQ(parsed.next_region_id, 3u);
  ASSERT_EQ(parsed.regions.size(), 1u);
  const RegionPlacement& q = parsed.regions.at(2);
  EXPECT_EQ(q.primary, 2u);
  EXPECT_EQ(q.backups, p.backups);
  EXPECT_EQ(q.last_primary_change, 6u);
  EXPECT_EQ(q.last_replica_change, 7u);
  EXPECT_EQ(q.colocate_with, 1u);
  EXPECT_EQ(q.object_stride, 48u);
}

TEST(TypesTest, GlobalAddrPacking) {
  GlobalAddr a{12345, 67890};
  EXPECT_EQ(GlobalAddr::FromPacked(a.Packed()), a);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(GlobalAddr{}.valid());
}

TEST(TypesTest, TxIdOrderingAndHash) {
  TxId a{1, 2, 3, 4};
  TxId b{1, 2, 3, 5};
  EXPECT_LT(a, b);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a, (TxId{1, 2, 3, 4}));
}

class ProtocolTest : public ::testing::Test {
 protected:
  void Boot(int machines = 5, uint64_t seed = 1) {
    cluster_ = MakeStartedCluster(SmallClusterOptions(machines, seed));
  }

  Task<Status> WriteValue(MachineId node, GlobalAddr addr, uint64_t value) {
    auto tx = cluster_->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    (void)tx->Write(addr, U64Bytes(value));
    co_return co_await tx->Commit();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ProtocolTest, LeasesKeepRenewingWithoutFailures) {
  Boot();
  cluster_->RunFor(200 * kMillisecond);  // 20 lease periods
  // No machine was suspected: configuration still at id 1 with 5 members.
  for (int m = 0; m < 5; m++) {
    EXPECT_EQ(cluster_->node(static_cast<MachineId>(m)).config().id, 1u);
    EXPECT_EQ(cluster_->node(static_cast<MachineId>(m)).stats().reconfigurations, 0u);
  }
}

TEST_F(ProtocolTest, LeaseExpiryCountingWithoutRecovery) {
  ClusterOptions opts = SmallClusterOptions(4, 3);
  opts.node.lease.trigger_recovery = false;
  cluster_ = MakeStartedCluster(opts);
  cluster_->Kill(2);
  cluster_->RunFor(100 * kMillisecond);
  // The CM counted expiries for the dead machine but did not reconfigure.
  EXPECT_GT(cluster_->node(0).lease_manager().expiry_events(), 0u);
  EXPECT_TRUE(cluster_->node(0).config().Contains(2));
}

TEST_F(ProtocolTest, PreemptionNoiseCausesFalsePositivesForNormalPriority) {
  auto run = [](LeaseImpl impl) {
    ClusterOptions opts = SmallClusterOptions(4, 5);
    opts.node.lease.impl = impl;
    opts.node.lease.duration = 5 * kMillisecond;
    opts.node.lease.trigger_recovery = false;
    auto cluster = MakeStartedCluster(opts);
    for (int m = 0; m < 4; m++) {
      cluster->node(static_cast<MachineId>(m))
          .lease_manager()
          .SetPreemptionNoise(100, 8 * kMillisecond);
    }
    cluster->RunFor(500 * kMillisecond);
    uint64_t total = 0;
    for (int m = 0; m < 4; m++) {
      total += cluster->node(static_cast<MachineId>(m)).lease_manager().expiry_events();
    }
    return total;
  };
  uint64_t dedicated = run(LeaseImpl::kUdDedicated);
  uint64_t high_pri = run(LeaseImpl::kUdDedicatedHighPri);
  // Preemption bursts longer than the lease hit the normal-priority thread;
  // the interrupt-driven high-priority manager is immune (Figure 16).
  EXPECT_GT(dedicated, 0u);
  EXPECT_EQ(high_pri, 0u);
}

TEST_F(ProtocolTest, ValidationUsesRdmaBelowThresholdAndRpcAbove) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  // Seed objects.
  for (uint32_t i = 0; i < 10; i++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, GlobalAddr{rid, i * 16}, i))->ok());
  }
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId coord = kInvalidMachine;
  for (int m = 0; m < cluster_->num_machines(); m++) {
    if (!p->Contains(static_cast<MachineId>(m))) {
      coord = static_cast<MachineId>(m);
      break;
    }
  }
  ASSERT_NE(coord, kInvalidMachine);

  auto read_n = [this](MachineId node, RegionId r, uint32_t n) -> Task<Status> {
    auto tx = cluster_->node(node).Begin(0);
    for (uint32_t i = 0; i < n; i++) {
      auto v = co_await tx->Read(GlobalAddr{r, i * 16}, 8);
      if (!v.ok()) {
        co_return v.status();
      }
    }
    co_return co_await tx->Commit();
  };

  // 3 reads (< t_r = 4): validation by one-sided reads, no RPC.
  FabricStats before = cluster_->fabric().stats();
  ASSERT_TRUE(RunTask(*cluster_, read_n(coord, rid, 3))->ok());
  FabricStats mid = cluster_->fabric().stats();
  uint64_t reads_small = mid.rdma_reads - before.rdma_reads;
  // 3 execution reads + 3 validation reads.
  EXPECT_EQ(reads_small, 6u);

  // 8 reads (> t_r): validation falls back to one VALIDATE message.
  ASSERT_TRUE(RunTask(*cluster_, read_n(coord, rid, 8))->ok());
  FabricStats after = cluster_->fabric().stats();
  uint64_t reads_big = after.rdma_reads - mid.rdma_reads;
  // Only the 8 execution reads; validation went over the message queue.
  EXPECT_EQ(reads_big, 8u);
}

TEST_F(ProtocolTest, ZombieLocksReleasedAfterCoordinatorDeath) {
  Boot(5, 17);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, addr, 1))->ok());

  const RegionPlacement placement = *cluster_->node(0).config().Placement(rid);
  MachineId coord = kInvalidMachine;
  for (int m = 0; m < cluster_->num_machines(); m++) {
    if (!placement.Contains(static_cast<MachineId>(m))) {
      coord = static_cast<MachineId>(m);
      break;
    }
  }
  ASSERT_NE(coord, kInvalidMachine);

  // Fire a burst of writes from the doomed coordinator, then kill it while
  // many are mid-commit (locks held at the primary).
  auto spray = [](Cluster* c, MachineId node, GlobalAddr a) -> Task<void> {
    for (int i = 0; i < 50; i++) {
      auto tx = c->node(node).Begin(0);
      auto r = co_await tx->Read(a, 8);
      if (!r.ok()) {
        co_return;
      }
      std::vector<uint8_t> b(8);
      uint64_t v = static_cast<uint64_t>(i) + 100;
      std::memcpy(b.data(), &v, 8);
      (void)tx->Write(a, b);
      (void)co_await tx->Commit();
    }
  };
  Spawn(spray(cluster_.get(), coord, addr));
  cluster_->RunFor(300 * kMicrosecond);  // some commit is mid-flight now
  cluster_->Kill(coord);
  cluster_->RunFor(300 * kMillisecond);  // detection + recovery

  // The object must be unlocked (recovery committed or aborted the zombie)
  // and writable from a survivor.
  MachineId lookup = placement.primary == coord ? 0 : placement.primary;
  const RegionPlacement* p2 = cluster_->node(lookup).config().Placement(rid);
  ASSERT_NE(p2, nullptr);
  RegionReplica* rep = cluster_->node(p2->primary).replica(rid);
  ASSERT_NE(rep, nullptr);
  EXPECT_FALSE(VersionWord::IsLocked(rep->ReadHeader(0)));
  MachineId writer = 0;
  while (writer == coord) {
    writer++;
  }
  auto s = RunTask(*cluster_, WriteValue(writer, addr, 999), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
}

TEST_F(ProtocolTest, RingSpaceIsReclaimedUnderSustainedTraffic) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr addr{rid, 0};
  // Many more commits than any ring could hold without reclamation: if
  // truncation, feedback, or reservations leaked, this would die with a
  // reservation failure (regression test for an actual bug).
  for (int i = 0; i < 400; i++) {
    auto s = RunTask(*cluster_, WriteValue(static_cast<MachineId>(i % 5), addr,
                                           static_cast<uint64_t>(i)));
    ASSERT_TRUE(s.has_value() && (s->ok() || s->code() == StatusCode::kAborted))
        << "iteration " << i << ": " << s->ToString();
  }
}

TEST_F(ProtocolTest, RereplicatedBackupMatchesPrimaryContent) {
  Boot(5, 29);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  Pcg32 rng(3);
  for (uint32_t i = 0; i < 64; i++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, GlobalAddr{rid, i * 16}, rng.Next64()))->ok());
  }
  cluster_->RunFor(30 * kMillisecond);

  const RegionPlacement p0 = *cluster_->node(0).config().Placement(rid);
  cluster_->Kill(p0.backups[0]);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->regions_rereplicated() >= 1; },
                       3 * kSecond));
  cluster_->RunFor(20 * kMillisecond);

  MachineId live = 0;
  while (live == p0.backups[0]) {
    live++;
  }
  const RegionPlacement* p1 = cluster_->node(live).config().Placement(rid);
  RegionReplica* prim = cluster_->node(p1->primary).replica(rid);
  ASSERT_NE(prim, nullptr);
  for (MachineId b : p1->backups) {
    RegionReplica* rep = cluster_->node(b).replica(rid);
    ASSERT_NE(rep, nullptr);
    for (uint32_t i = 0; i < 64; i++) {
      EXPECT_EQ(0, std::memcmp(prim->Ptr(i * 16, 16), rep->Ptr(i * 16, 16), 16))
          << "object " << i << " differs on backup " << b;
    }
  }
}

TEST_F(ProtocolTest, ConfigurationIdsIncreaseMonotonically) {
  Boot(6, 31);
  EXPECT_EQ(cluster_->node(0).config().id, 1u);
  cluster_->Kill(5);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->node(0).config().id == 2; },
                       kSecond));
  cluster_->Kill(4);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->node(0).config().id == 3; },
                       kSecond));
  cluster_->RunFor(20 * kMillisecond);  // let NEW-CONFIG reach every member
  // Every survivor agrees.
  for (MachineId m = 0; m < 4; m++) {
    EXPECT_EQ(cluster_->node(m).config().id, 3u);
    EXPECT_EQ(cluster_->node(m).config().machines.size(), 4u);
  }
}

TEST_F(ProtocolTest, FunctionOfLastDrainedAfterRecovery) {
  Boot(5, 37);
  cluster_->Kill(4);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->node(0).config().id == 2; },
                       kSecond));
  cluster_->RunFor(20 * kMillisecond);
  // After the drain step of recovery, every member records LastDrained = the
  // previous configuration id (records from configs <= it are rejected for
  // recovering transactions).
  for (MachineId m = 0; m < 4; m++) {
    EXPECT_EQ(cluster_->node(m).last_drained(), 1u) << "machine " << m;
  }
}

}  // namespace
}  // namespace farm
