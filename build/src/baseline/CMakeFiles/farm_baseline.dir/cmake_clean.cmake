file(REMOVE_RECURSE
  "CMakeFiles/farm_baseline.dir/local_occ.cc.o"
  "CMakeFiles/farm_baseline.dir/local_occ.cc.o.d"
  "CMakeFiles/farm_baseline.dir/twopc.cc.o"
  "CMakeFiles/farm_baseline.dir/twopc.cc.o.d"
  "libfarm_baseline.a"
  "libfarm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
