# Empty compiler generated dependencies file for farm_baseline.
# This may be replaced when dependencies are built.
