file(REMOVE_RECURSE
  "libfarm_baseline.a"
)
