file(REMOVE_RECURSE
  "CMakeFiles/farm_sim.dir/machine.cc.o"
  "CMakeFiles/farm_sim.dir/machine.cc.o.d"
  "libfarm_sim.a"
  "libfarm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
