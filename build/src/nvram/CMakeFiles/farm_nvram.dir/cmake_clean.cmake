file(REMOVE_RECURSE
  "CMakeFiles/farm_nvram.dir/nvram.cc.o"
  "CMakeFiles/farm_nvram.dir/nvram.cc.o.d"
  "libfarm_nvram.a"
  "libfarm_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
