# Empty compiler generated dependencies file for farm_nvram.
# This may be replaced when dependencies are built.
