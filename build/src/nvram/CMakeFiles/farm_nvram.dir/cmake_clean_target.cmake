file(REMOVE_RECURSE
  "libfarm_nvram.a"
)
