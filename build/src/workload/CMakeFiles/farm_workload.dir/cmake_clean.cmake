file(REMOVE_RECURSE
  "CMakeFiles/farm_workload.dir/driver.cc.o"
  "CMakeFiles/farm_workload.dir/driver.cc.o.d"
  "CMakeFiles/farm_workload.dir/kv.cc.o"
  "CMakeFiles/farm_workload.dir/kv.cc.o.d"
  "CMakeFiles/farm_workload.dir/tatp.cc.o"
  "CMakeFiles/farm_workload.dir/tatp.cc.o.d"
  "CMakeFiles/farm_workload.dir/tpcc.cc.o"
  "CMakeFiles/farm_workload.dir/tpcc.cc.o.d"
  "libfarm_workload.a"
  "libfarm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
