file(REMOVE_RECURSE
  "libfarm_workload.a"
)
