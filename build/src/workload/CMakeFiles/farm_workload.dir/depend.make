# Empty dependencies file for farm_workload.
# This may be replaced when dependencies are built.
