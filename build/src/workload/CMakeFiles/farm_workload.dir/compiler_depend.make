# Empty compiler generated dependencies file for farm_workload.
# This may be replaced when dependencies are built.
