
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alloc.cc" "src/core/CMakeFiles/farm_core.dir/alloc.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/alloc.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/farm_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/cm.cc" "src/core/CMakeFiles/farm_core.dir/cm.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/cm.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/farm_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/config.cc.o.d"
  "/root/repo/src/core/data_recovery.cc" "src/core/CMakeFiles/farm_core.dir/data_recovery.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/data_recovery.cc.o.d"
  "/root/repo/src/core/lease.cc" "src/core/CMakeFiles/farm_core.dir/lease.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/lease.cc.o.d"
  "/root/repo/src/core/msgr.cc" "src/core/CMakeFiles/farm_core.dir/msgr.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/msgr.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/farm_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/node.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/core/CMakeFiles/farm_core.dir/recovery.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/recovery.cc.o.d"
  "/root/repo/src/core/ringlog.cc" "src/core/CMakeFiles/farm_core.dir/ringlog.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/ringlog.cc.o.d"
  "/root/repo/src/core/tx.cc" "src/core/CMakeFiles/farm_core.dir/tx.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/tx.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/farm_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/farm_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/farm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/farm_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/farm_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/farm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/farm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
