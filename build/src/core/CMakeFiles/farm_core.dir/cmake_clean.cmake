file(REMOVE_RECURSE
  "CMakeFiles/farm_core.dir/alloc.cc.o"
  "CMakeFiles/farm_core.dir/alloc.cc.o.d"
  "CMakeFiles/farm_core.dir/cluster.cc.o"
  "CMakeFiles/farm_core.dir/cluster.cc.o.d"
  "CMakeFiles/farm_core.dir/cm.cc.o"
  "CMakeFiles/farm_core.dir/cm.cc.o.d"
  "CMakeFiles/farm_core.dir/config.cc.o"
  "CMakeFiles/farm_core.dir/config.cc.o.d"
  "CMakeFiles/farm_core.dir/data_recovery.cc.o"
  "CMakeFiles/farm_core.dir/data_recovery.cc.o.d"
  "CMakeFiles/farm_core.dir/lease.cc.o"
  "CMakeFiles/farm_core.dir/lease.cc.o.d"
  "CMakeFiles/farm_core.dir/msgr.cc.o"
  "CMakeFiles/farm_core.dir/msgr.cc.o.d"
  "CMakeFiles/farm_core.dir/node.cc.o"
  "CMakeFiles/farm_core.dir/node.cc.o.d"
  "CMakeFiles/farm_core.dir/recovery.cc.o"
  "CMakeFiles/farm_core.dir/recovery.cc.o.d"
  "CMakeFiles/farm_core.dir/ringlog.cc.o"
  "CMakeFiles/farm_core.dir/ringlog.cc.o.d"
  "CMakeFiles/farm_core.dir/tx.cc.o"
  "CMakeFiles/farm_core.dir/tx.cc.o.d"
  "CMakeFiles/farm_core.dir/wire.cc.o"
  "CMakeFiles/farm_core.dir/wire.cc.o.d"
  "libfarm_core.a"
  "libfarm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
