# Empty compiler generated dependencies file for farm_zk.
# This may be replaced when dependencies are built.
