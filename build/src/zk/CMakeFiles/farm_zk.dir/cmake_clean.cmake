file(REMOVE_RECURSE
  "CMakeFiles/farm_zk.dir/coord.cc.o"
  "CMakeFiles/farm_zk.dir/coord.cc.o.d"
  "libfarm_zk.a"
  "libfarm_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
