file(REMOVE_RECURSE
  "libfarm_zk.a"
)
