# Empty dependencies file for farm_common.
# This may be replaced when dependencies are built.
