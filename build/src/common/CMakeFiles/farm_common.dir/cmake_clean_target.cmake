file(REMOVE_RECURSE
  "libfarm_common.a"
)
