file(REMOVE_RECURSE
  "CMakeFiles/farm_common.dir/hash.cc.o"
  "CMakeFiles/farm_common.dir/hash.cc.o.d"
  "CMakeFiles/farm_common.dir/histogram.cc.o"
  "CMakeFiles/farm_common.dir/histogram.cc.o.d"
  "CMakeFiles/farm_common.dir/logging.cc.o"
  "CMakeFiles/farm_common.dir/logging.cc.o.d"
  "CMakeFiles/farm_common.dir/rand.cc.o"
  "CMakeFiles/farm_common.dir/rand.cc.o.d"
  "CMakeFiles/farm_common.dir/status.cc.o"
  "CMakeFiles/farm_common.dir/status.cc.o.d"
  "libfarm_common.a"
  "libfarm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
