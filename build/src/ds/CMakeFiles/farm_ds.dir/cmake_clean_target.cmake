file(REMOVE_RECURSE
  "libfarm_ds.a"
)
