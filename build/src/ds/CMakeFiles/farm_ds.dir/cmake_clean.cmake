file(REMOVE_RECURSE
  "CMakeFiles/farm_ds.dir/btree.cc.o"
  "CMakeFiles/farm_ds.dir/btree.cc.o.d"
  "CMakeFiles/farm_ds.dir/hashtable.cc.o"
  "CMakeFiles/farm_ds.dir/hashtable.cc.o.d"
  "libfarm_ds.a"
  "libfarm_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
