# Empty compiler generated dependencies file for farm_ds.
# This may be replaced when dependencies are built.
