file(REMOVE_RECURSE
  "CMakeFiles/farm_net.dir/fabric.cc.o"
  "CMakeFiles/farm_net.dir/fabric.cc.o.d"
  "libfarm_net.a"
  "libfarm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
