# Empty dependencies file for ringlog_test.
# This may be replaced when dependencies are built.
