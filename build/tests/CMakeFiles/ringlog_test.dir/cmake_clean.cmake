file(REMOVE_RECURSE
  "CMakeFiles/ringlog_test.dir/ringlog_test.cc.o"
  "CMakeFiles/ringlog_test.dir/ringlog_test.cc.o.d"
  "ringlog_test"
  "ringlog_test.pdb"
  "ringlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
