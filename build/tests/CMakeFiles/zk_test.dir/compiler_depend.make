# Empty compiler generated dependencies file for zk_test.
# This may be replaced when dependencies are built.
