file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_recovery_distribution.dir/bench_fig12_recovery_distribution.cc.o"
  "CMakeFiles/bench_fig12_recovery_distribution.dir/bench_fig12_recovery_distribution.cc.o.d"
  "bench_fig12_recovery_distribution"
  "bench_fig12_recovery_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_recovery_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
