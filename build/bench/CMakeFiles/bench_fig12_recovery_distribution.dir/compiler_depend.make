# Empty compiler generated dependencies file for bench_fig12_recovery_distribution.
# This may be replaced when dependencies are built.
