# Empty dependencies file for bench_ablation_function_ship.
# This may be replaced when dependencies are built.
