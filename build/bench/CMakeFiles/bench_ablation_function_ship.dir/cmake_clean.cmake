file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_function_ship.dir/bench_ablation_function_ship.cc.o"
  "CMakeFiles/bench_ablation_function_ship.dir/bench_ablation_function_ship.cc.o.d"
  "bench_ablation_function_ship"
  "bench_ablation_function_ship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_function_ship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
