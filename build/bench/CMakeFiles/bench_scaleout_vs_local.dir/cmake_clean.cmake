file(REMOVE_RECURSE
  "CMakeFiles/bench_scaleout_vs_local.dir/bench_scaleout_vs_local.cc.o"
  "CMakeFiles/bench_scaleout_vs_local.dir/bench_scaleout_vs_local.cc.o.d"
  "bench_scaleout_vs_local"
  "bench_scaleout_vs_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleout_vs_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
