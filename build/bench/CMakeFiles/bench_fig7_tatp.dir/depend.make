# Empty dependencies file for bench_fig7_tatp.
# This may be replaced when dependencies are built.
