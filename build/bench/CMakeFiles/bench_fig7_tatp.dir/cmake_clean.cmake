file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tatp.dir/bench_fig7_tatp.cc.o"
  "CMakeFiles/bench_fig7_tatp.dir/bench_fig7_tatp.cc.o.d"
  "bench_fig7_tatp"
  "bench_fig7_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
