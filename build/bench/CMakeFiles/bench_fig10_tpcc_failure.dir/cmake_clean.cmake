file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tpcc_failure.dir/bench_fig10_tpcc_failure.cc.o"
  "CMakeFiles/bench_fig10_tpcc_failure.dir/bench_fig10_tpcc_failure.cc.o.d"
  "bench_fig10_tpcc_failure"
  "bench_fig10_tpcc_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tpcc_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
