# Empty dependencies file for bench_fig10_tpcc_failure.
# This may be replaced when dependencies are built.
