file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tatp_failure.dir/bench_fig9_tatp_failure.cc.o"
  "CMakeFiles/bench_fig9_tatp_failure.dir/bench_fig9_tatp_failure.cc.o.d"
  "bench_fig9_tatp_failure"
  "bench_fig9_tatp_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tatp_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
