# Empty dependencies file for bench_fig9_tatp_failure.
# This may be replaced when dependencies are built.
