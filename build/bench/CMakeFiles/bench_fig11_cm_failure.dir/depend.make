# Empty dependencies file for bench_fig11_cm_failure.
# This may be replaced when dependencies are built.
