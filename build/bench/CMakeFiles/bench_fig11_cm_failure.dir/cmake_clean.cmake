file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cm_failure.dir/bench_fig11_cm_failure.cc.o"
  "CMakeFiles/bench_fig11_cm_failure.dir/bench_fig11_cm_failure.cc.o.d"
  "bench_fig11_cm_failure"
  "bench_fig11_cm_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cm_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
