# Empty compiler generated dependencies file for bench_msgcount_ablation.
# This may be replaced when dependencies are built.
