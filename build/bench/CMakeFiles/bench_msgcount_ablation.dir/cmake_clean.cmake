file(REMOVE_RECURSE
  "CMakeFiles/bench_msgcount_ablation.dir/bench_msgcount_ablation.cc.o"
  "CMakeFiles/bench_msgcount_ablation.dir/bench_msgcount_ablation.cc.o.d"
  "bench_msgcount_ablation"
  "bench_msgcount_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msgcount_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
