file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_leases.dir/bench_fig16_leases.cc.o"
  "CMakeFiles/bench_fig16_leases.dir/bench_fig16_leases.cc.o.d"
  "bench_fig16_leases"
  "bench_fig16_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
