# Empty compiler generated dependencies file for bench_fig14_15_recovery_pacing.
# This may be replaced when dependencies are built.
