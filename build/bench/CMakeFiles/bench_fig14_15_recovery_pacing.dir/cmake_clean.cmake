file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_recovery_pacing.dir/bench_fig14_15_recovery_pacing.cc.o"
  "CMakeFiles/bench_fig14_15_recovery_pacing.dir/bench_fig14_15_recovery_pacing.cc.o.d"
  "bench_fig14_15_recovery_pacing"
  "bench_fig14_15_recovery_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_recovery_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
