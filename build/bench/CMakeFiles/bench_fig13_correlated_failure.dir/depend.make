# Empty dependencies file for bench_fig13_correlated_failure.
# This may be replaced when dependencies are built.
