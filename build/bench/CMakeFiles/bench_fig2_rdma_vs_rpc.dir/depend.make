# Empty dependencies file for bench_fig2_rdma_vs_rpc.
# This may be replaced when dependencies are built.
