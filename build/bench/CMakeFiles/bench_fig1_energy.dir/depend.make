# Empty dependencies file for bench_fig1_energy.
# This may be replaced when dependencies are built.
