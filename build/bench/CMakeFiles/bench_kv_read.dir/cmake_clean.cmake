file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_read.dir/bench_kv_read.cc.o"
  "CMakeFiles/bench_kv_read.dir/bench_kv_read.cc.o.d"
  "bench_kv_read"
  "bench_kv_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
