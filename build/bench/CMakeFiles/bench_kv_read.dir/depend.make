# Empty dependencies file for bench_kv_read.
# This may be replaced when dependencies are built.
