# Empty dependencies file for order_queue.
# This may be replaced when dependencies are built.
