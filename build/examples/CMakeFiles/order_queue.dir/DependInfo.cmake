
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/order_queue.cpp" "examples/CMakeFiles/order_queue.dir/order_queue.cpp.o" "gcc" "examples/CMakeFiles/order_queue.dir/order_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/farm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/farm_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/farm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/farm_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/zk/CMakeFiles/farm_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/farm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/farm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/farm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
