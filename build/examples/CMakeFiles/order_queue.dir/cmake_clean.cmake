file(REMOVE_RECURSE
  "CMakeFiles/order_queue.dir/order_queue.cpp.o"
  "CMakeFiles/order_queue.dir/order_queue.cpp.o.d"
  "order_queue"
  "order_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
