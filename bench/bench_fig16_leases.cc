// Figure 16: false-positive lease expiries for four lease-manager
// implementations under load (section 6.5).
//
// Paper: all threads on all machines flood the CM with RDMA reads for
// 10 minutes; recovery is disabled and lease expiry events are counted.
// RPC leases expire constantly even at 100 ms; unreliable datagrams help
// but still expire from CPU contention; a dedicated thread makes 100 ms
// safe; only the interrupt-driven high-priority manager sustains 5 ms
// leases with zero false positives (1 ms is below the timer resolution).
#include "bench/bench_util.h"

namespace farm {
namespace {

constexpr SimDuration kExperiment = 1 * kSecond;  // scaled from 10 minutes

uint64_t RunOne(LeaseImpl impl, SimDuration lease, uint64_t seed) {
  ClusterOptions copts = bench::DefaultClusterOptions(5, seed);
  copts.node.lease.impl = impl;
  copts.node.lease.duration = lease;
  copts.node.lease.trigger_recovery = false;  // count, don't recover
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();

  // Background OS activity that occasionally preempts normal-priority
  // threads (what the paper's dedicated-but-not-priority thread suffers).
  for (int m = 0; m < cluster->num_machines(); m++) {
    cluster->node(static_cast<MachineId>(m))
        .lease_manager()
        .SetPreemptionNoise(/*events_per_sec=*/15, /*burst=*/8 * kMillisecond);
  }

  // The stress load: members flood the CM's shared message path slightly
  // above its service capacity, so queues (and therefore queueing delay)
  // grow -- exactly what strands RPC leases behind data traffic and starves
  // lease processing on shared worker threads.
  constexpr uint16_t kFloodService = 230;
  cluster->fabric().RegisterRpcService(
      0, kFloodService, 0, copts.node.worker_threads - 1,
      [](MachineId, std::vector<uint8_t>, Fabric::ReplyFn reply) { reply({1}); });
  auto stop = std::make_shared<bool>(false);
  auto flood = [](Cluster* c, MachineId m, int thread,
                  std::shared_ptr<bool> s) -> Task<void> {
    std::vector<uint8_t> req(16, 0);
    while (!*s) {
      // Open loop: a fixed offered rate independent of completions.
      (void)c->fabric().Call(m, 0, kFloodService, req, &c->node(m).worker(thread),
                             10 * kSecond);
      co_await SleepFor(c->sim(), 20 * kMicrosecond);
    }
  };
  int flooders = 0;
  for (int m = 1; m < cluster->num_machines(); m++) {
    for (int t = 0; t < copts.node.worker_threads; t++) {
      for (int k = 0; k < 3; k++) {
        Spawn(flood(cluster.get(), static_cast<MachineId>(m), t, stop));
        flooders++;
      }
    }
  }
  (void)flooders;
  cluster->RunFor(kExperiment);
  *stop = true;

  uint64_t expiries = 0;
  for (int m = 0; m < cluster->num_machines(); m++) {
    expiries += cluster->node(static_cast<MachineId>(m)).lease_manager().expiry_events();
  }
  return expiries;
}

void Run() {
  bench::PrintHeader(
      "Figure 16: false-positive lease expiries vs lease duration",
      "only UD+thread+priority sustains 5ms leases with no false positives (paper)",
      "5 machines flooding the CM with RDMA reads for 1s (vs 10min)");

  const LeaseImpl kImpls[] = {LeaseImpl::kRpc, LeaseImpl::kUdShared,
                              LeaseImpl::kUdDedicated, LeaseImpl::kUdDedicatedHighPri};
  const char* kNames[] = {"RPC", "UD", "UD+thread", "UD+thread+pri"};
  const SimDuration kLeases[] = {kMillisecond,      2 * kMillisecond, 5 * kMillisecond,
                                 10 * kMillisecond, 100 * kMillisecond};

  std::printf("%16s", "lease");
  for (const char* n : kNames) {
    std::printf(" %14s", n);
  }
  std::printf("\n");
  for (SimDuration lease : kLeases) {
    std::printf("%14.0fms", static_cast<double>(lease) / 1e6);
    for (size_t i = 0; i < 4; i++) {
      uint64_t e = RunOne(kImpls[i], lease, 100 + i);
      std::printf(" %14llu", static_cast<unsigned long long>(e));
    }
    std::printf("\n");
  }
  std::printf("\nShape check: expiries fall from left (RPC: lease messages stuck behind\n"
              "data traffic, failing even at 100 ms) to right (interrupt-driven, high\n"
              "priority, clean at 5 ms). One divergence: the paper still sees 1-2 ms\n"
              "expiries for the best variant because its loaded network RTT reaches\n"
              "1 ms; our simulated RTT stays in microseconds, so 1 ms leases hold.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
