// Message-count ablation (section 4's analysis and section 7's claim).
//
// Paper: a FaRM commit uses Pw(f+3) one-sided writes plus Pr one-sided
// reads, with no CPU at backups; a Spanner-style 2PC over Paxos groups
// needs 4P(2f+1) messages; and the optimized protocol sends up to 44% fewer
// messages than the NSDI'14 FaRM protocol (which also wrote LOCK records to
// backups).
#include "bench/bench_util.h"
#include "src/baseline/twopc.h"
#include "src/nvram/nvram.h"

namespace farm {
namespace {

// Runs `txs` FaRM transactions each writing one object in `regions` distinct
// regions (Pw primaries, f=2 backups each) and returns ops per transaction.
struct FarmCounts {
  double writes_per_tx;
  double reads_per_tx;
  double rpcs_per_tx;
  double wire_msgs_per_tx;
  double doorbells_per_tx;
};

FarmCounts MeasureFarm(bool backup_lock_records, int num_regions, int read_only_objects,
                       bool batch = false) {
  ClusterOptions copts = bench::DefaultClusterOptions(14, 57);
  copts.node.backup_lock_records = backup_lock_records;
  copts.node.msgr.batch = batch;
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  std::vector<RegionId> regions;
  for (int i = 0; i < num_regions + 1; i++) {
    auto rid = bench::AwaitTask(
        *cluster,
        [](Cluster* c, int idx) -> Task<StatusOr<RegionId>> {
          (void)idx;
          co_return co_await c->node(0).CreateRegion(64 << 10, 64, kInvalidRegion, 0);
        }(cluster.get(), i));
    FARM_CHECK(rid.has_value() && rid->ok());
    regions.push_back(rid->value());
  }

  // Coordinate from a machine that replicates none of the regions so every
  // participant is remote (the paper's Pw counts primaries, local or not;
  // local participation would hide writes from the wire counters).
  MachineId coordinator = 0;
  for (int m = 0; m < cluster->num_machines(); m++) {
    bool hosts = false;
    for (RegionId r : regions) {
      const RegionPlacement* pl = cluster->node(0).config().Placement(r);
      if (pl != nullptr && pl->Contains(static_cast<MachineId>(m))) {
        hosts = true;
        break;
      }
    }
    if (!hosts) {
      coordinator = static_cast<MachineId>(m);
      break;
    }
  }

  // Seed objects, then measure the steady-state commit (not the seeding).
  const int kTxs = 200;
  auto run = [](Cluster* c, MachineId coord, std::vector<RegionId> rs, int writes, int reads,
                int txs) -> Task<int> {
    int committed = 0;
    for (int i = 0; i < txs; i++) {
      auto tx = c->node(coord).Begin(0);
      bool ok = true;
      for (int w = 0; w < writes && ok; w++) {
        GlobalAddr addr{rs[static_cast<size_t>(w)], static_cast<uint32_t>((i % 16) * 64)};
        auto v = co_await tx->Read(addr, 48);
        ok = v.ok();
        if (ok) {
          std::vector<uint8_t> data(48, static_cast<uint8_t>(i));
          (void)tx->Write(addr, data);
        }
      }
      for (int r = 0; r < reads && ok; r++) {
        GlobalAddr addr{rs.back(), static_cast<uint32_t>(((i + r) % 16) * 64)};
        ok = (co_await tx->Read(addr, 48)).ok();
      }
      if (ok && (co_await tx->Commit()).ok()) {
        committed++;
      }
    }
    co_return committed;
  };
  // Warm up (also seeds versions).
  (void)bench::AwaitTask(*cluster, run(cluster.get(), coordinator, regions, num_regions,
                                       read_only_objects, 32),
                         60 * kSecond);
  FabricStats before = cluster->fabric().stats();
  auto committed = bench::AwaitTask(
      *cluster, run(cluster.get(), coordinator, regions, num_regions, read_only_objects, kTxs),
      120 * kSecond);
  FARM_CHECK(committed.has_value() && *committed > 0);
  // Drain truncations so their (piggybacked/explicit) cost is included.
  cluster->RunFor(20 * kMillisecond);
  FabricStats after = cluster->fabric().stats();
  FarmCounts out;
  out.writes_per_tx =
      static_cast<double>(after.rdma_writes - before.rdma_writes) / *committed;
  out.reads_per_tx = static_cast<double>(after.rdma_reads - before.rdma_reads) / *committed;
  out.rpcs_per_tx = static_cast<double>(after.rpcs - before.rpcs) / *committed;
  out.wire_msgs_per_tx =
      static_cast<double>(after.WireMessages() - before.WireMessages()) / *committed;
  out.doorbells_per_tx =
      static_cast<double>(after.doorbells - before.doorbells) / *committed;
  return out;
}

double MeasureTwoPc(int participants) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<NvramStore>> stores;
  int total = (participants + 1) * 3 + 1;
  for (MachineId i = 0; i < static_cast<MachineId>(total); i++) {
    machines.push_back(std::make_unique<Machine>(sim, i, 4, static_cast<int>(i)));
    stores.push_back(std::make_unique<NvramStore>());
    fabric.AddMachine(machines.back().get(), stores.back().get());
  }
  TwoPcSystem::Options opts;
  opts.groups = participants;
  std::vector<MachineId> members;
  for (int i = 0; i < (participants + 1) * 3; i++) {
    members.push_back(static_cast<MachineId>(i));
  }
  TwoPcSystem system(fabric, members, opts);
  MachineId client = static_cast<MachineId>(total - 1);

  const int kTxs = 100;
  auto run = [](TwoPcSystem* sys, MachineId cl, int parts, int txs) -> Task<int> {
    int committed = 0;
    for (int i = 0; i < txs; i++) {
      std::vector<uint64_t> keys;
      for (int p = 0; p < parts; p++) {
        keys.push_back(static_cast<uint64_t>(p));
      }
      if (co_await sys->RunTx(cl, keys)) {
        committed++;
      }
    }
    co_return committed;
  };
  auto committed = std::make_shared<std::optional<int>>();
  auto wrapper = [](Task<int> inner, std::shared_ptr<std::optional<int>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  uint64_t before = fabric.stats().rpcs;
  Spawn(wrapper(run(&system, client, participants, kTxs), committed));
  sim.Run();
  FARM_CHECK(committed->has_value() && **committed == kTxs);
  // Each RPC is a request + a response on the wire.
  return 2.0 * static_cast<double>(fabric.stats().rpcs - before) / kTxs;
}

void Run() {
  bench::PrintHeader(
      "Message-count ablation (sections 4 and 7)",
      "FaRM: Pw(f+3) writes + Pr reads; 2PC/Paxos: 4P(2f+1) msgs; NSDI'14 +44% (paper)",
      "f=2 (3-way replication), Pw in {1,2,3}, 200 measured transactions each");

  std::printf("%-34s %10s %10s %10s %12s\n", "configuration", "writes/tx", "reads/tx",
              "rpcs/tx", "analytical");
  for (int pw : {1, 2, 3}) {
    FarmCounts farm = MeasureFarm(false, pw, 0);
    std::printf("FaRM optimized, Pw=%-15d %10.1f %10.1f %10.1f %9d(w)\n", pw,
                farm.writes_per_tx, farm.reads_per_tx, farm.rpcs_per_tx, pw * (2 + 3));
  }
  {
    FarmCounts farm = MeasureFarm(false, 1, 4);
    std::printf("FaRM optimized, Pw=1 Pr=4%9s %10.1f %10.1f %10.1f %12s\n", "",
                farm.writes_per_tx, farm.reads_per_tx, farm.rpcs_per_tx, "+Pr reads");
  }
  {
    FarmCounts nsdi = MeasureFarm(true, 2, 0);
    FarmCounts opt = MeasureFarm(false, 2, 0);
    std::printf("FaRM NSDI'14 (backup LOCKs), Pw=2  %10.1f %10.1f %10.1f %12s\n",
                nsdi.writes_per_tx, nsdi.reads_per_tx, nsdi.rpcs_per_tx, "");
    std::printf("  -> optimized protocol sends %.0f%% fewer one-sided writes\n",
                (1.0 - opt.writes_per_tx / nsdi.writes_per_tx) * 100.0);
  }
  for (int p : {1, 2, 3}) {
    double msgs = MeasureTwoPc(p);
    std::printf("2PC over Paxos groups, P=%-9d %10s %10s %10.1f %9d(m)\n", p, "-", "-",
                msgs / 2.0, 4 * p * 5);
  }
  {
    // Data-plane batching ablation: same workload, batching off vs on.
    // This workload issues transactions one at a time from one coordinator,
    // so batches rarely hold more than one record and the reduction here is
    // a *floor*: coalescing needs concurrent same-destination traffic, which
    // the loaded fig7/fig8 sweeps provide (their batched-vs-unbatched deltas
    // are the gated numbers -- see tools/bench/run_bench_suite).
    FarmCounts off = MeasureFarm(false, 2, 0, /*batch=*/false);
    FarmCounts on = MeasureFarm(false, 2, 0, /*batch=*/true);
    double reduction = (1.0 - on.wire_msgs_per_tx / off.wire_msgs_per_tx) * 100.0;
    std::printf("FaRM Pw=2, batching off          %10.1f %10.1f %10.1f %10.1f(msgs)\n",
                off.writes_per_tx, off.reads_per_tx, off.rpcs_per_tx, off.wire_msgs_per_tx);
    std::printf("FaRM Pw=2, batching on           %10.1f %10.1f %10.1f %10.1f(msgs)\n",
                on.writes_per_tx, on.reads_per_tx, on.rpcs_per_tx, on.wire_msgs_per_tx);
    std::printf("  -> batching sends %.0f%% fewer wire messages per committed tx "
                "(%.1f doorbells/tx)\n"
                "     (serial coordinator: a floor, not the loaded-cluster number;\n"
                "      the gated deltas come from the fig7/fig8 sweeps)\n",
                reduction, on.doorbells_per_tx);
    if (auto* j = bench::Json()) {
      j->Set("msgs_per_tx_unbatched", off.wire_msgs_per_tx);
      j->Set("msgs_per_tx_batched", on.wire_msgs_per_tx);
      j->Set("msg_reduction_pct", reduction);
      j->Set("doorbells_per_tx_batched", on.doorbells_per_tx);
    }
  }
  std::printf("\nNote: FaRM per-tx writes include LOCK + COMMIT-BACKUP + COMMIT-PRIMARY\n"
              "records plus amortized truncation and ring-buffer feedback writes; the\n"
              "paper's Pw(f+3) counts the commit-critical records only. The 2PC\n"
              "baseline's analytical column is the paper's 4P(2f+1) with f=2.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
