// Section 6.3 "read performance": key-value lookups with 16-byte keys and
// 32-byte values, uniform access.
//
// Paper: 790 M lookups/s across 90 machines (8.8 lookups/us/machine) with
// 23 us median and 73 us 99th percentile latency; CPU bound despite two
// NICs per machine.
#include "bench/bench_util.h"
#include "src/workload/kv.h"

namespace farm {
namespace {

void Run() {
  bench::PrintHeader(
      "Read performance: uniform KV lookups (section 6.3)",
      "790M lookups/s on 90 machines (8.8/us/machine), 23us median (paper)",
      "8 machines x 2 threads, 50k keys, 32B values, lock-free reads");

  ClusterOptions copts = bench::DefaultClusterOptions(8, 3);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  KvOptions kopts;
  kopts.keys = 50000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, KvOptions o) -> Task<StatusOr<KvDb>> {
        co_return co_await KvDb::Create(*c, o);
      }(cluster.get(), kopts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok())
      << (db.has_value() ? db->status().ToString() : "timeout");

  std::printf("%12s %14s %14s %12s %12s\n", "concurrency", "lookups/s", "per-machine/us",
              "median_us", "p99_us");
  for (int conc : {1, 2, 4, 8, 16}) {
    DriverOptions dopts;
    dopts.threads_per_machine = 2;
    dopts.concurrency_per_thread = conc;
    dopts.warmup = 5 * kMillisecond;
    dopts.measure = 40 * kMillisecond;
    DriverResult r = RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
    std::printf("%12d %14.0f %14.3f %12.1f %12.1f\n", conc, r.CommittedPerSecond(),
                r.OpsPerMicrosecond() / cluster->num_machines(),
                static_cast<double>(r.latency.Percentile(50)) / 1e3,
                static_cast<double>(r.latency.Percentile(99)) / 1e3);
  }
  std::printf("\nShape check: lookups are one one-sided read (no commit phase), so\n"
              "median latency stays near the wire RTT until the CPUs saturate.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
