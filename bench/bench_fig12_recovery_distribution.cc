// Figure 12: distribution of TATP recovery times over repeated failures.
//
// Paper: 40 runs with a smaller data set (3.5B subscribers); recovery time
// measured from suspicion at the CM until throughput is back to 80% of the
// pre-failure average. Median ~50 ms, >70% under 100 ms, all under 200 ms.
#include <algorithm>

#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

constexpr int kRuns = 12;  // scaled from the paper's 40

struct RunResult {
  double suspect_to_80_ms = -1;  // the paper's metric
  double kill_to_80_ms = -1;     // includes failure detection
};

RunResult OneRun(uint64_t seed) {
  ClusterOptions copts = bench::DefaultClusterOptions(9, seed);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 6000;  // smaller data set, as in the paper's variant
  topts.load_seed = seed;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  dopts.seed = seed;
  MachineId victim = static_cast<MachineId>(1 + seed % 8);
  auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, {victim},
                                     30 * kMillisecond, 400 * kMillisecond);
  // The paper measures from suspicion to 80% throughput.
  if (r.suspect == kSimTimeNever || r.recover_80 == kSimTimeNever) {
    return {};
  }
  RunResult out;
  out.kill_to_80_ms = static_cast<double>(r.recover_80) / 1e6;
  out.suspect_to_80_ms =
      r.recover_80 > r.suspect
          ? (static_cast<double>(r.recover_80) - static_cast<double>(r.suspect)) / 1e6
          : 0.0;
  return out;
}

void Run() {
  bench::PrintHeader(
      "Figure 12: distribution of TATP recovery times",
      "median ~50ms, >70% under 100ms, all under 200ms over 40 runs (paper)",
      "12 runs, 9 machines, smaller data set (6k subscribers), varied victims/seeds");

  std::vector<double> suspect_times;
  std::vector<double> kill_times;
  for (int run = 0; run < kRuns; run++) {
    RunResult t = OneRun(static_cast<uint64_t>(run) * 131 + 17);
    std::printf("  run %2d: suspect->80%% = %.1f ms   kill->80%% = %.1f ms\n", run,
                t.suspect_to_80_ms, t.kill_to_80_ms);
    if (t.suspect_to_80_ms >= 0) {
      suspect_times.push_back(t.suspect_to_80_ms);
      kill_times.push_back(t.kill_to_80_ms);
    }
  }
  std::sort(suspect_times.begin(), suspect_times.end());
  std::sort(kill_times.begin(), kill_times.end());
  std::printf("\n%10s %18s %18s\n", "percentile", "suspect->80% ms", "kill->80% ms");
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    size_t idx = std::min(
        suspect_times.size() - 1,
        static_cast<size_t>(pct / 100.0 * static_cast<double>(suspect_times.size())));
    std::printf("%9.0f%% %18.1f %18.1f\n", pct, suspect_times[idx], kill_times[idx]);
  }
  std::printf("\nShape check: a tight distribution. At our scale (9 machines, sub-ms\n"
              "message latencies) suspicion-to-recovery is sub-millisecond; including\n"
              "failure detection the times cluster around the 10 ms lease period, and\n"
              "the worst run stays within a small multiple of the median -- the same\n"
              "tightness the paper's 40-run distribution shows at its scale.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
