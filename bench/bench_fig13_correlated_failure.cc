// Figure 13: TATP throughput when a whole failure domain dies at once.
//
// Paper: 90 machines grouped into five 18-machine failure domains (one per
// leaf switch); killing one domain leaves every region with replicas (the
// CM places replicas in distinct domains). Peak throughput returns in
// <~400 ms -- slower than a single failure because ~130,000 transactions
// recover instead of ~7,500 -- and re-replication of 1025 regions takes
// minutes without hurting the foreground.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 13: TATP with a correlated (failure-domain) failure",
      "kill 18/90 machines: peak back <400ms; ~17x more recovering txs (paper)",
      "10 machines in 5 domains; kill one domain (2 machines) under load");

  ClusterOptions copts = bench::DefaultClusterOptions(10, 21);
  copts.failure_domains = 5;  // replicas spread across domains
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 12000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  // Kill every machine in failure domain 1 simultaneously (machines 1, 6).
  std::vector<MachineId> victims;
  for (int m = 0; m < cluster->num_machines(); m++) {
    if (cluster->FailureDomainOf(static_cast<MachineId>(m)) == 1) {
      victims.push_back(static_cast<MachineId>(m));
    }
  }
  std::printf("killing failure domain 1: machines");
  for (MachineId v : victims) {
    std::printf(" %u", v);
  }
  std::printf("\n\n");

  auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, victims,
                                     50 * kMillisecond, 1500 * kMillisecond);
  bench::PrintTimeline(r, 12 * kMillisecond, 80 * kMillisecond);
  std::printf("\nno region lost: %s (replicas span distinct failure domains)\n",
              cluster->AnyRegionLost() ? "FAILED -- a region lost all replicas!" : "ok");
  std::printf("\nShape check: recovery takes longer than the single-machine case of\n"
              "figure 9 (more transactions and regions to recover at once), yet all\n"
              "data survives because no two replicas shared the failed domain.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
