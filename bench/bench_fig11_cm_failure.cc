// Figure 11: TATP performance timeline when the CM fails.
//
// Paper: recovery is slower than for a non-CM machine -- ~110 ms to regain
// throughput versus ~50 ms -- mostly because reconfiguration takes longer
// (~97 ms vs ~20 ms): a backup CM must take over and rebuild CM-only state,
// and leases granted by the old CM must be waited out.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

bench::TimelineResult RunOne(MachineId victim, const char* label) {
  ClusterOptions copts = bench::DefaultClusterOptions(9, 13);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 12000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, {victim},
                                     50 * kMillisecond, 400 * kMillisecond);
  std::printf("\n[%s]\n", label);
  bench::PrintTimeline(r, 8 * kMillisecond, 60 * kMillisecond);
  return r;
}

void Run() {
  bench::PrintHeader(
      "Figure 11: TATP timeline with CM failure",
      "CM failure recovers ~2x slower than non-CM (~110ms vs ~50ms) (paper)",
      "9 machines; machine 0 is the initial CM; compare against a non-CM kill");

  auto non_cm = RunOne(5, "baseline: non-CM machine failure");
  auto cm = RunOne(0, "CM failure (machine 0)");

  std::printf("\nsummary: time back to 80%% throughput: non-CM %.1f ms, CM %.1f ms\n",
              bench::MsOrDash(non_cm.recover_80), bench::MsOrDash(cm.recover_80));
  std::printf("reconfiguration (suspect -> config-commit): non-CM %.1f ms, CM %.1f ms\n",
              bench::MsOrDash(non_cm.config_commit) - bench::MsOrDash(non_cm.suspect),
              bench::MsOrDash(cm.config_commit) - bench::MsOrDash(cm.suspect));
  std::printf("\nShape check: the CM case pays the backup-CM takeover plus the wait for\n"
              "old-CM leases to expire, so reconfiguration -- and therefore recovery --\n"
              "takes a small multiple of the non-CM case.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
