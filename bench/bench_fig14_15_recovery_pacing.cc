// Figures 14 and 15: data-recovery pacing versus foreground throughput.
//
// Figure 14 (TATP): very aggressive recovery (four concurrent 32 KB fetches
// per thread) re-replicates ~20x faster (166 GB in 1.1 s in the paper) but
// depresses throughput until most regions are done (~800 ms).
// Figure 15 (TPC-C): a moderately aggressive setting (32 KB every 2 ms)
// finishes ~4x faster with no visible throughput impact, because TPC-C's
// co-partitioned accesses rarely touch remote machines.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"
#include "src/workload/tpcc.h"

namespace farm {
namespace {

struct PacingResult {
  bench::TimelineResult timeline;
  double dip_fraction = 0;  // min 8ms window throughput after all-active / baseline
};

PacingResult RunTatp(uint32_t block_bytes, SimDuration interval, int concurrent,
                     uint64_t seed) {
  ClusterOptions copts = bench::DefaultClusterOptions(9, seed);
  copts.node.region_size = 4 << 20;  // more bytes to recover per region
  copts.node.recovery_block_bytes = block_bytes;
  copts.node.recovery_fetch_interval = interval;
  copts.node.recovery_concurrent_fetches = concurrent;
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 40000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok())
      << (db.has_value() ? db->status().ToString() : "timeout");
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  PacingResult out;
  out.timeline = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, {5},
                                           40 * kMillisecond, 2200 * kMillisecond);
  // Throughput dip while data recovery actually runs: the minimum 2ms
  // window between data-rec-start and completion.
  const auto& buckets = out.timeline.series->throughput.intervals();
  SimTime rec_start = out.timeline.kill_time +
                      (out.timeline.data_rec_start == kSimTimeNever
                           ? 20 * kMillisecond
                           : out.timeline.data_rec_start);
  SimTime rec_end = out.timeline.data_rec_done == kSimTimeNever
                        ? rec_start + 300 * kMillisecond
                        : out.timeline.kill_time + out.timeline.data_rec_done;
  size_t from = static_cast<size_t>(rec_start / kMillisecond) + 1;
  size_t to = static_cast<size_t>(rec_end / kMillisecond) + 2;
  double min_window = 1e18;
  for (size_t i = from; i + 8 <= to && i + 8 < buckets.size(); i += 4) {
    double w = 0;
    for (size_t j = i; j < i + 8; j++) {
      w += static_cast<double>(buckets[j]);
    }
    min_window = std::min(min_window, w / 8.0);
  }
  if (min_window > 1e17) {
    min_window = out.timeline.baseline_per_ms;  // window too short to sample
  }
  out.dip_fraction = min_window / out.timeline.baseline_per_ms;
  return out;
}

void Run() {
  bench::PrintHeader(
      "Figures 14+15: data-recovery pacing vs foreground throughput",
      "aggressive recovery ~20x faster re-replication but throughput dips (paper)",
      "9 machines TATP; default pacing (8KB, 4ms window) vs aggressive (32KB x4)");

  std::printf("[Figure 14: TATP]\n");
  auto paced = RunTatp(8 << 10, 4 * kMillisecond, 1, 31);
  auto aggressive = RunTatp(32 << 10, 20 * kMicrosecond, 8, 33);

  std::printf("%22s %18s %18s\n", "", "default pacing", "aggressive");
  std::printf("%22s %18.1f %18.1f\n", "re-replication ms",
              bench::MsOrDash(paced.timeline.data_rec_done),
              bench::MsOrDash(aggressive.timeline.data_rec_done));
  std::printf("%22s %17.0f%% %17.0f%%\n", "min tput vs baseline",
              paced.dip_fraction * 100.0, aggressive.dip_fraction * 100.0);
  std::printf("%22s %18llu %18llu\n", "regions recovered",
              static_cast<unsigned long long>(paced.timeline.regions_rereplicated),
              static_cast<unsigned long long>(aggressive.timeline.regions_rereplicated));
  std::printf("\nShape check: aggressive pacing completes re-replication ~%.0fx faster.\n"
              "At our scaled-down data volume the recovery traffic is too small to\n"
              "visibly dent foreground throughput (the paper recovers 166 GB and sees\n"
              "a dip until ~800 ms); the tradeoff axis -- recovery speed bought with\n"
              "recovery bandwidth -- is what this reproduces.\n",
              bench::MsOrDash(paced.timeline.data_rec_done) /
                  bench::MsOrDash(aggressive.timeline.data_rec_done));

  std::printf("\n[Figure 15: TPC-C with moderately aggressive recovery]\n");
  {
    ClusterOptions copts = bench::DefaultClusterOptions(9, 41);
    copts.node.region_size = 2 << 20;
    copts.node.recovery_block_bytes = 32 << 10;  // 32 KB every 2 ms
    copts.node.recovery_fetch_interval = 2 * kMillisecond;
    auto cluster = std::make_unique<Cluster>(copts);
    cluster->Start();
    cluster->RunFor(5 * kMillisecond);
    TpccOptions topts;
    topts.warehouses = 9;
    topts.customers = 48;
    topts.items = 300;
    topts.init_orders = 12;
    auto db = bench::AwaitTask(
        *cluster,
        [](Cluster* c, TpccOptions o) -> Task<StatusOr<TpccDb>> {
          co_return co_await TpccDb::Create(*c, o);
        }(cluster.get(), topts),
        600 * kSecond);
    FARM_CHECK(db.has_value() && db->ok());
    DriverOptions dopts;
    dopts.threads_per_machine = 2;
    dopts.concurrency_per_thread = 4;
    dopts.warmup = 10 * kMillisecond;
    dopts.machines = db->value().ClientMachines(*cluster);
    auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts,
                                       {dopts.machines.front()}, 40 * kMillisecond,
                                       900 * kMillisecond);
    double after = r.series->throughput.AverageRate(
        r.kill_time + 100 * kMillisecond, r.kill_time + 600 * kMillisecond);
    std::printf("re-replication done at %.1f ms (%llu regions); baseline %.1f tx/ms;\n"
                "throughput during recovery: %.1f tx/ms (%.0f%% of baseline)\n",
                bench::MsOrDash(r.data_rec_done),
                static_cast<unsigned long long>(r.regions_rereplicated), r.baseline_per_ms,
                after, after / r.baseline_per_ms * 100.0);
    std::printf("\nShape check: TPC-C finishes re-replication ~4x faster than default\n"
                "pacing would. The throughput ratio includes the structural loss of the\n"
                "dead machine's clients (~1/9) and its warehouses now committing\n"
                "remotely; recovery traffic itself adds no visible interference, as in\n"
                "the paper (TPC-C's co-partitioned accesses are mostly local).\n");
  }
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
