// Figure 8: TPC-C throughput vs latency.
//
// Paper: up to 4.5 M "new order" tx/s; median latency 808 us, 99th 1.9 ms at
// peak; halving the latency costs ~10% throughput. Expected shape: an order
// of magnitude higher latency than TATP (complex multi-row transactions)
// with the same saturation knee.
#include "bench/bench_util.h"
#include "src/workload/tpcc.h"

namespace farm {
namespace {

void Run() {
  constexpr int kMachines = 24;
  bench::PrintHeader(
      "Figure 8: TPC-C throughput-latency",
      "4.5M new-order/s peak @ 808us median / 1.9ms p99 (paper)",
      "24 machines x 2 threads, 48 warehouses co-partitioned, 60ms windows");

  ClusterOptions copts = bench::DefaultClusterOptions(kMachines);
  copts.node.region_size = 2 << 20;
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TpccOptions topts;
  // Multiple warehouses per machine, as in the paper (240 per machine at
  // 21600/90): contention on warehouse/district rows stays bounded.
  topts.warehouses = 48;
  topts.customers = 32;
  topts.items = 200;
  topts.init_orders = 10;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TpccOptions o) -> Task<StatusOr<TpccDb>> {
        co_return co_await TpccDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok())
      << "tpcc load failed: " << (db.has_value() ? db->status().ToString() : "timeout");

  std::printf("%12s %16s %14s %12s %12s\n", "concurrency", "new-order/s", "committed/s",
              "median_us", "p99_us");
  struct Point {
    int threads;
    int concurrency;
  };
  const Point kPoints[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}, {2, 4}};
  uint64_t last_new_orders = 0;
  uint64_t total_msgs = 0;
  uint64_t total_committed = 0;
  FabricStats measured_before = cluster->fabric().stats();
  for (const Point& p : kPoints) {
    DriverOptions dopts;
    dopts.threads_per_machine = p.threads;
    dopts.concurrency_per_thread = p.concurrency;
    dopts.warmup = 10 * kMillisecond;
    dopts.measure = 60 * kMillisecond;
    dopts.machines = db->value().ClientMachines(*cluster);
    FabricStats stats_before = cluster->fabric().stats();
    uint64_t msgs_before = stats_before.WireMessages();
    uint64_t committed_before = cluster->TotalStats().tx_committed;
    DriverResult r = RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
    uint64_t committed = cluster->TotalStats().tx_committed - committed_before;
    total_msgs += cluster->fabric().stats().WireMessages() - msgs_before;
    total_committed += committed;
    uint64_t new_orders = db->value().stats()->new_order_committed - last_new_orders;
    last_new_orders = db->value().stats()->new_order_committed;
    double secs = static_cast<double>(r.measure_end - r.measure_start) / 1e9;
    double p50_us = static_cast<double>(r.latency.Percentile(50)) / 1e3;
    double p99_us = static_cast<double>(r.latency.Percentile(99)) / 1e3;
    std::printf("%7dx%-4d %16.0f %14.0f %12.1f %12.1f\n", p.threads, p.concurrency,
                static_cast<double>(new_orders) / secs, r.CommittedPerSecond(), p50_us,
                p99_us);
    if (auto* j = bench::Json()) {
      j->AddPoint({{"threads", p.threads},
                   {"concurrency", p.concurrency},
                   {"new_order_per_sec", static_cast<double>(new_orders) / secs},
                   {"tx_per_sec", r.CommittedPerSecond()},
                   {"p50_us", p50_us},
                   {"p99_us", p99_us},
                   {"dp_msgs_per_tx",
                    bench::DataPlaneMsgsPerTx(stats_before, cluster->fabric().stats(),
                                              committed)}});
    }
  }
  if (auto* j = bench::Json()) {
    j->Set("machines", kMachines);
    j->Set("warehouses", topts.warehouses);
  }
  bench::ReportMessageCounts(total_msgs, total_committed);
  bench::ReportWireBreakdown(measured_before, cluster->fabric().stats(), total_committed);
  bench::ReportPhaseLatencies(*cluster);
  bench::ReportSimEvents(cluster->sim().events_processed());
  std::printf("\nShape check: latencies sit well above TATP's (hundreds of us vs single\n"
              "digits) because transactions touch tens of rows; backing off one load\n"
              "step from the knee roughly halves latency for ~10%% less throughput.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
