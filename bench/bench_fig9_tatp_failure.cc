// Figure 9: TATP performance timeline with a single machine failure.
//
// Paper (a): throughput drops sharply at the kill and is back to peak in
// <40-50 ms; regions become active in ~39 ms; annotations mark suspect /
// probe / zookeeper / config-commit / all-active / data-rec-start.
// Paper (b): paced data recovery re-replicates the failed machine's regions
// over tens of seconds without denting foreground throughput.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 9: TATP timeline with one machine failure",
      "back to peak <50ms; paced data recovery with no throughput dip (paper)",
      "9 machines, 10ms leases, 1MB regions (vs 2GB), kill at t=60ms");

  ClusterOptions copts = bench::DefaultClusterOptions(9, 5);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 12000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  // Victim: a non-CM machine (the CM case is Figure 11).
  MachineId victim = 5;
  auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, {victim},
                                     50 * kMillisecond, 800 * kMillisecond);
  std::printf("[Figure 9a: time to full throughput]\n");
  bench::PrintTimeline(r);

  std::printf("\n[Figure 9b: time to full data recovery]\n");
  std::printf("regions re-replicated over time (paced fetches; dashed line in paper):\n");
  SimTime t0 = r.kill_time;
  size_t i = 0;
  for (SimTime t : cluster->rereplication_times()) {
    if (++i % 4 == 0 || t == cluster->rereplication_times().back()) {
      std::printf("  +%7.1fms  %zu regions\n", static_cast<double>(t - t0) / 1e6, i);
    }
  }
  std::printf("\nShape check: throughput recovers within tens of ms (lock recovery),\n"
              "while region re-replication trails far behind without hurting the\n"
              "foreground (the paper's 17s-per-region pacing scales to our region size).\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
