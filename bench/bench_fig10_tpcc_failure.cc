// Figure 10: TPC-C performance timeline with a single machine failure.
//
// Paper: most throughput back in <50 ms (slightly slower lock recovery than
// TATP: more complex transactions), but data recovery takes much longer
// than TATP's because co-partitioning places multiple regions on the same
// machines (two machines recover 17 regions each -> over 4 minutes).
#include "bench/bench_util.h"
#include "src/workload/tpcc.h"

namespace farm {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 10: TPC-C timeline with one machine failure",
      "throughput back <50ms; data recovery slower than TATP due to locality (paper)",
      "9 machines, 9 co-partitioned warehouses, kill a warehouse primary at t=50ms");

  ClusterOptions copts = bench::DefaultClusterOptions(9, 7);
  copts.node.region_size = 2 << 20;
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TpccOptions topts;
  topts.warehouses = 9;
  topts.customers = 48;
  topts.items = 300;
  topts.init_orders = 12;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TpccOptions o) -> Task<StatusOr<TpccDb>> {
        co_return co_await TpccDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok())
      << (db.has_value() ? db->status().ToString() : "timeout");

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 4;
  dopts.warmup = 10 * kMillisecond;
  dopts.machines = db->value().ClientMachines(*cluster);
  // Kill a machine hosting warehouse partitions (their anchor primaries).
  MachineId victim = dopts.machines.front();
  auto r = bench::RunFailureTimeline(*cluster, db->value().MakeWorkload(), dopts, {victim},
                                     50 * kMillisecond, 1200 * kMillisecond);
  std::printf("[Figure 10a: time to full throughput]\n");
  bench::PrintTimeline(r);

  std::printf("\n[Figure 10b: time to full data recovery]\n");
  std::printf("co-partitioning concentrates the victim's regions on few machines, so\n"
              "re-replication parallelism is limited (the paper's 4-minute tail):\n");
  SimTime t0 = r.kill_time;
  size_t i = 0;
  for (SimTime t : cluster->rereplication_times()) {
    i++;
    if (i % 4 == 0 || t == cluster->rereplication_times().back()) {
      std::printf("  +%8.1fms  %zu regions\n", static_cast<double>(t - t0) / 1e6, i);
    }
  }
  std::printf("\nShape check: lock recovery is about as fast as TATP's, but the region\n"
              "re-replication tail is longer relative to the recovered byte count.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
