// Ablation: function-shipping single-field updates (section 6.2).
//
// The paper ships TATP's UPDATE_LOCATION (70% of updates modify one field)
// to the subscriber row's primary, where the whole transaction runs locally:
// one RPC round trip replaces a remote read + a distributed commit. This
// bench measures the TATP mix with and without the optimization.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

DriverResult RunVariant(bool function_ship) {
  ClusterOptions copts = bench::DefaultClusterOptions(8, 19);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 20000;
  topts.function_ship_updates = function_ship;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 8;
  dopts.warmup = 10 * kMillisecond;
  dopts.measure = 60 * kMillisecond;
  return RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
}

void Run() {
  bench::PrintHeader(
      "Ablation: function-shipping single-field TATP updates (section 6.2)",
      "\"since 70% of the updates only modify a single object field, we "
      "function ship these\" (paper)",
      "8 machines, 20k subscribers, full TATP mix, 60ms window");

  DriverResult shipped = RunVariant(true);
  DriverResult unshipped = RunVariant(false);
  std::printf("%-28s %14s %12s %12s\n", "variant", "tx/s", "median_us", "p99_us");
  std::printf("%-28s %14.0f %12.1f %12.1f\n", "function-shipped updates",
              shipped.CommittedPerSecond(),
              static_cast<double>(shipped.latency.Percentile(50)) / 1e3,
              static_cast<double>(shipped.latency.Percentile(99)) / 1e3);
  std::printf("%-28s %14.0f %12.1f %12.1f\n", "coordinator-run updates",
              unshipped.CommittedPerSecond(),
              static_cast<double>(unshipped.latency.Percentile(50)) / 1e3,
              static_cast<double>(unshipped.latency.Percentile(99)) / 1e3);
  std::printf("\nShape check: shipping replaces a remote read plus a distributed commit\n"
              "with a single RPC round trip, roughly halving median latency. At our\n"
              "scaled thread counts the primaries' RPC-handler CPU costs the mix some\n"
              "throughput; on the paper's 30-thread machines the freed coordinator\n"
              "CPU is the scarcer resource, which is why FaRM ships these updates.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
