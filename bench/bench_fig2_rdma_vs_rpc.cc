// Figure 2: per-machine RDMA and RPC read performance versus transfer size.
//
// Paper: on 90 machines with two 56 Gbps NICs each, both are CPU bound at
// small sizes and one-sided RDMA reads outperform RPC by ~4x (the RPC burns
// remote CPU); the gap narrows as transfers grow and the NICs become
// bandwidth bound.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/nvram/nvram.h"

namespace farm {
namespace {

constexpr int kMachines = 24;
constexpr int kThreads = 4;
constexpr int kConcurrency = 4;
constexpr uint16_t kEchoService = 240;
constexpr SimDuration kMeasure = 20 * kMillisecond;

uint64_t g_sim_events = 0;  // summed across the per-point rigs

struct Rig {
  Simulator sim;
  std::unique_ptr<Fabric> fabric;
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<NvramStore>> stores;
  std::vector<uint64_t> blobs;  // one registered buffer per machine
};

std::unique_ptr<Rig> MakeRig() {
  auto rig = std::make_unique<Rig>();
  rig->fabric = std::make_unique<Fabric>(rig->sim, CostModel{});
  for (MachineId m = 0; m < kMachines; m++) {
    rig->machines.push_back(std::make_unique<Machine>(rig->sim, m, kThreads, m));
    rig->stores.push_back(std::make_unique<NvramStore>());
    rig->fabric->AddMachine(rig->machines.back().get(), rig->stores.back().get(), 2);
    rig->blobs.push_back(rig->stores.back()->Allocate(4096));
  }
  return rig;
}

Task<void> RdmaReader(Rig* rig, MachineId self, int thread, uint32_t size, uint64_t seed,
                      std::shared_ptr<uint64_t> ops, std::shared_ptr<bool> stop) {
  Pcg32 rng(seed);
  while (!*stop) {
    MachineId peer = static_cast<MachineId>(rng.Uniform(kMachines - 1));
    if (peer >= self) {
      peer++;
    }
    NetResult r = co_await rig->fabric->Read(self, peer, rig->blobs[peer], size,
                                             &rig->machines[self]->thread(thread));
    if (r.status.ok()) {
      (*ops)++;
    }
  }
}

Task<void> RpcReader(Rig* rig, MachineId self, int thread, uint32_t size, uint64_t seed,
                     std::shared_ptr<uint64_t> ops, std::shared_ptr<bool> stop) {
  Pcg32 rng(seed);
  std::vector<uint8_t> req(8, 0);
  std::memcpy(req.data(), &size, 4);
  while (!*stop) {
    MachineId peer = static_cast<MachineId>(rng.Uniform(kMachines - 1));
    if (peer >= self) {
      peer++;
    }
    NetResult r = co_await rig->fabric->Call(self, peer, kEchoService, req,
                                             &rig->machines[self]->thread(thread));
    if (r.status.ok()) {
      (*ops)++;
    }
  }
}

double MeasureOps(bool use_rpc, uint32_t size) {
  auto rig = MakeRig();
  if (use_rpc) {
    for (MachineId m = 0; m < kMachines; m++) {
      rig->fabric->RegisterRpcService(
          m, kEchoService, 0, kThreads - 1,
          [](MachineId, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
            uint32_t n = 0;
            std::memcpy(&n, req.data(), 4);
            reply(std::vector<uint8_t>(n, 0));  // serve the requested bytes
          });
    }
  }
  auto ops = std::make_shared<uint64_t>(0);
  auto stop = std::make_shared<bool>(false);
  uint64_t seed = 1;
  for (MachineId m = 0; m < kMachines; m++) {
    for (int t = 0; t < kThreads; t++) {
      for (int c = 0; c < kConcurrency; c++) {
        if (use_rpc) {
          Spawn(RpcReader(rig.get(), m, t, size, seed++, ops, stop));
        } else {
          Spawn(RdmaReader(rig.get(), m, t, size, seed++, ops, stop));
        }
      }
    }
  }
  rig->sim.RunFor(2 * kMillisecond);  // warmup
  uint64_t before = *ops;
  rig->sim.RunFor(kMeasure);
  uint64_t measured = *ops - before;
  *stop = true;
  rig->sim.RunFor(kMillisecond);
  g_sim_events += rig->sim.events_processed();
  double per_machine_per_us =
      static_cast<double>(measured) / (static_cast<double>(kMeasure) / 1e3) / kMachines;
  return per_machine_per_us;
}

void Run() {
  bench::PrintHeader(
      "Figure 2: per-machine RDMA vs RPC read performance",
      "RDMA ~4x RPC at small sizes, both CPU bound; gap narrows with size (paper)",
      "24 machines x 4 threads x 4 outstanding reads, all-to-all random reads");
  std::printf("%10s %16s %16s %10s\n", "bytes", "rdma ops/us/m", "rpc ops/us/m", "ratio");
  for (uint32_t size : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    double rdma = MeasureOps(false, size);
    double rpc = MeasureOps(true, size);
    std::printf("%10u %16.2f %16.2f %9.1fx\n", size, rdma, rpc, rdma / rpc);
    if (auto* j = bench::Json()) {
      j->AddPoint({{"bytes", size},
                   {"rdma_ops_per_us_per_machine", rdma},
                   {"rpc_ops_per_us_per_machine", rpc},
                   {"ratio", rdma / rpc}});
    }
  }
  if (auto* j = bench::Json()) {
    j->Set("machines", kMachines);
  }
  bench::ReportSimEvents(g_sim_events);
  std::printf("\nShape check: one-sided reads beat RPC by ~3-4x at small sizes because\n"
              "RPC burns remote CPU; the advantage shrinks once transfers get large\n"
              "and the NICs approach line rate.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
