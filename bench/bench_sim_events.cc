// Simulator event-queue microbenchmark: wall-clock events/sec.
//
// This is the number the CI bench gate tracks (tools/bench/run_bench_suite
// fails if it regresses >20% from the committed BENCH_baseline.json). Every
// figure bench is bottlenecked on Simulator::Step, so events/sec here is the
// repo's proxy for "how big a cluster can we afford to simulate".
//
// Scenarios vary the two knobs that dominate Step cost: how many events are
// pending (heap depth -> sift-down work per pop) and how big the scheduled
// closure is (relocation cost; 48 bytes is the SmallFn inline capacity, so
// these shapes never heap-allocate -- exactly like the fabric hot path).
#include <chrono>  // farmlint: allow(wall-clock): this bench measures real time

#include "bench/bench_util.h"
#include "src/sim/simulator.h"

namespace farm {
namespace {

// Self-rescheduling event chain with a configurable inline payload. Each
// invocation reschedules itself at a pseudo-random small delay, so chains
// interleave and the heap sees realistic (time, seq) churn instead of pure
// FIFO rotation.
template <int kPadWords>
struct Pump {
  Simulator* sim;
  uint64_t salt;
  uint64_t left;
  uint64_t pad[kPadWords];

  void operator()() {
    if (left == 0) {
      return;
    }
    left--;
    Pump next = *this;
    sim->After(1 + (salt * 2654435761ULL + left) % 13, next);
  }
};

struct Scenario {
  const char* label;
  int pending;       // concurrent chains == steady-state heap size
  int payload;       // closure size in bytes
  uint64_t events;   // total events to pump
};

template <int kPadWords>
uint64_t RunScenario(const Scenario& sc, double* out_secs) {
  Simulator sim;
  uint64_t per_chain = sc.events / static_cast<uint64_t>(sc.pending);
  for (int i = 0; i < sc.pending; i++) {
    Pump<kPadWords> p{&sim, static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 1,
                      per_chain, {}};
    static_assert(sizeof(p) <= 48, "payload must stay within the SmallFn inline buffer");
    sim.After(1 + static_cast<SimDuration>(i % 13), p);
  }
  // farmlint: allow(wall-clock): this bench measures real time
  auto start = std::chrono::steady_clock::now();
  sim.Run();
  // farmlint: allow(wall-clock): this bench measures real time
  *out_secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return sim.events_processed();
}

void Run() {
  bench::PrintHeader("Simulator event-queue microbench",
                     "no paper figure: CI gate for the discrete-event hot path",
                     "self-rescheduling chains; 24B and 48B inline closures");

  // 24B closure = {sim, salt, left}; 48B adds 3 pad words to fill the
  // SmallFn inline buffer. Pending counts bracket the figure benches
  // (hundreds to a few thousand in-flight events at 24+ machines).
  const Scenario kScenarios[] = {
      {"tiny24_pend64", 64, 24, 4'000'000},
      {"tiny24_pend4096", 4096, 24, 4'000'000},
      {"mid48_pend64", 64, 48, 4'000'000},
      {"mid48_pend4096", 4096, 48, 4'000'000},
  };

  std::printf("%18s %10s %9s %12s %14s\n", "scenario", "pending", "payload", "ns/event",
              "events/sec");
  uint64_t total_events = 0;
  for (const Scenario& sc : kScenarios) {
    double secs = 0;
    uint64_t processed = sc.payload <= 24 ? RunScenario<0>(sc, &secs)
                                          : RunScenario<3>(sc, &secs);
    total_events += processed;
    double ns_per_event = secs * 1e9 / static_cast<double>(processed);
    double per_sec = static_cast<double>(processed) / secs;
    std::printf("%18s %10d %8dB %12.1f %14.0f\n", sc.label, sc.pending, sc.payload,
                ns_per_event, per_sec);
    if (auto* j = bench::Json()) {
      j->AddPoint({{"pending", sc.pending},
                   {"payload_bytes", sc.payload},
                   {"ns_per_event", ns_per_event},
                   {"events_per_sec", per_sec}});
    }
  }
  // BenchEnv divides this by its own wall clock to publish the blended
  // events_per_sec the regression gate compares against the baseline.
  bench::ReportSimEvents(total_events);
  std::printf("\nGate: blended events/sec (all scenarios / total wall) vs the committed\n"
              "baseline in tools/bench/BENCH_baseline.json; >20%% regression fails CI.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
