// Section 6.3 / 7: FaRM versus a single-machine in-memory engine.
//
// Paper: FaRM outperforms Hekaton's published TATP results by 33x on 90
// machines and already beats it with just three machines; against Silo,
// FaRM has higher throughput and (vs Silo-with-logging) far lower latency.
// This bench runs a TATP-like mix on the local OCC baseline (one machine,
// group-commit logging to SSD) and on FaRM at increasing cluster sizes.
#include "bench/bench_util.h"
#include "src/baseline/local_occ.h"
#include "src/nvram/nvram.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

// TATP-like mix for the local engine: 70% single-row reads, 10% 3-row
// reads, 20% single-row updates over `keys` records.
Task<void> LocalWorker(LocalOccEngine* engine, Simulator* sim, int thread, uint64_t keys,
                       uint64_t seed, std::shared_ptr<uint64_t> ops,
                       std::shared_ptr<bool> stop, Histogram* latency) {
  Pcg32 rng(seed);
  while (!*stop) {
    SimTime t0 = sim->Now();
    uint32_t dice = rng.Uniform(100);
    uint64_t k = rng.Uniform64(keys) + 1;
    bool ok;
    if (dice < 70) {
      std::vector<uint64_t> reads = {k};
      ok = co_await engine->RunTx(thread, reads, {}, 40);
    } else if (dice < 80) {
      std::vector<uint64_t> reads = {k, (k * 7) % keys + 1, (k * 13) % keys + 1};
      ok = co_await engine->RunTx(thread, reads, {}, 40);
    } else {
      std::vector<uint64_t> rw = {k};
      ok = co_await engine->RunTx(thread, rw, rw, 40);
    }
    if (ok) {
      (*ops)++;
      latency->Record(sim->Now() - t0);
    }
  }
}

struct LocalResult {
  double tx_per_sec;
  double median_us;
};

LocalResult RunLocal(bool logging) {
  Simulator sim;
  // The single-machine engine gets a beefier box: all 8 cores for the
  // engine (FaRM machines reserve threads for the lease manager).
  Machine machine(sim, 0, 8, 0);
  LocalOccEngine::Options opts;
  opts.threads = 8;
  opts.logging = logging;
  LocalOccEngine engine(sim, machine, CostModel{}, opts);
  const uint64_t kKeys = 20000;
  for (uint64_t k = 1; k <= kKeys; k++) {
    engine.Seed(k, 40);
  }
  auto ops = std::make_shared<uint64_t>(0);
  auto stop = std::make_shared<bool>(false);
  Histogram latency;
  for (int t = 0; t < opts.threads; t++) {
    for (int c = 0; c < 4; c++) {
      Spawn(LocalWorker(&engine, &sim, t, kKeys, static_cast<uint64_t>(t) * 31 + c, ops,
                        stop, &latency));
    }
  }
  sim.RunFor(5 * kMillisecond);
  uint64_t before = *ops;
  SimDuration window = 50 * kMillisecond;
  sim.RunFor(window);
  uint64_t measured = *ops - before;
  *stop = true;
  sim.RunFor(kMillisecond);
  return {static_cast<double>(measured) / (static_cast<double>(window) / 1e9),
          static_cast<double>(latency.Percentile(50)) / 1e3};
}

double RunFarm(int machines) {
  ClusterOptions copts = bench::DefaultClusterOptions(machines, 9);
  // Smaller regions spread each table over more primaries so throughput can
  // scale with the cluster (the paper's tables span hundreds of regions).
  copts.node.region_size = 256 << 10;
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);
  TatpOptions topts;
  // Scale the database with the cluster (the paper's per-machine data is
  // constant) so contention does not rise artificially with machine count.
  topts.subscribers = static_cast<uint64_t>(machines) * 4000;
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);
  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 8;
  dopts.warmup = 10 * kMillisecond;
  dopts.measure = 50 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
  return r.CommittedPerSecond();
}

void Run() {
  bench::PrintHeader(
      "Scale-out vs single-machine engine (sections 6.3, 7)",
      "FaRM beats the single-machine engine with ~3 machines; 33x at 90 (paper)",
      "local OCC engine (8 threads + SSD group commit) vs FaRM at 3-9 machines");

  LocalResult silo_logged = RunLocal(true);
  LocalResult silo_unlogged = RunLocal(false);
  std::printf("%-28s %14.0f tx/s   median %.1f us\n", "local OCC + SSD logging",
              silo_logged.tx_per_sec, silo_logged.median_us);
  std::printf("%-28s %14.0f tx/s   median %.1f us\n", "local OCC, no logging",
              silo_unlogged.tx_per_sec, silo_unlogged.median_us);
  for (int machines : {3, 5, 7, 9}) {
    double tps = RunFarm(machines);
    std::printf("FaRM, %2d machines            %14.0f tx/s   (%.1fx the logged engine)\n",
                machines, tps, tps / silo_logged.tx_per_sec);
  }
  std::printf("\nShape check: the distributed system overtakes the single machine at a\n"
              "small cluster size and keeps scaling, while the logged single-machine\n"
              "engine pays SSD group-commit latency on every update.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
