// Figure 7: TATP throughput vs latency.
//
// Paper: 90 machines, 9.2 B subscribers; peak 140 M tx/s with 58 us median
// latency (645 us 99th); ~2 M tx/s at 9 us median on the left of the curve.
// Expected shape here: latency roughly flat at low load, a knee as the
// cluster saturates, then a steep latency climb for little extra throughput.
#include "bench/bench_util.h"
#include "src/workload/tatp.h"

namespace farm {
namespace {

void Run() {
  constexpr int kMachines = 24;
  bench::PrintHeader(
      "Figure 7: TATP throughput-latency",
      "140M tx/s peak @ 58us median / 645us p99; 2M tx/s @ 9us median (paper)",
      "24 machines x 2 worker threads, 60k subscribers, 60ms windows");

  ClusterOptions copts = bench::DefaultClusterOptions(kMachines);
  auto cluster = std::make_unique<Cluster>(copts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);

  TatpOptions topts;
  topts.subscribers = 60000;  // keep ~2.5k subscribers/machine at 24 machines
  auto db = bench::AwaitTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      600 * kSecond);
  FARM_CHECK(db.has_value() && db->ok())
      << "tatp load failed: " << (db.has_value() ? db->status().ToString() : "timeout");
  db->value().RegisterServices(*cluster);

  std::printf("%12s %14s %12s %12s %12s %12s\n", "concurrency", "tx/s", "ops/us", "median_us",
              "p99_us", "msgs/tx");
  struct Point {
    int threads;
    int concurrency;
  };
  // Load sweep as in the paper: first more threads, then more concurrency
  // per thread.
  const Point kPoints[] = {{1, 1}, {2, 1}, {2, 2}, {2, 4}, {2, 8}, {2, 16}};
  uint64_t total_msgs = 0;
  uint64_t total_committed = 0;
  FabricStats measured_before = cluster->fabric().stats();
  for (const Point& p : kPoints) {
    DriverOptions dopts;
    dopts.threads_per_machine = p.threads;
    dopts.concurrency_per_thread = p.concurrency;
    dopts.warmup = 10 * kMillisecond;
    dopts.measure = 60 * kMillisecond;
    FabricStats stats_before = cluster->fabric().stats();
    uint64_t msgs_before = stats_before.WireMessages();
    uint64_t committed_before = cluster->TotalStats().tx_committed;
    DriverResult r = RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
    uint64_t msgs = cluster->fabric().stats().WireMessages() - msgs_before;
    uint64_t committed = cluster->TotalStats().tx_committed - committed_before;
    total_msgs += msgs;
    total_committed += committed;
    double msgs_per_tx =
        committed > 0 ? static_cast<double>(msgs) / static_cast<double>(committed) : 0.0;
    double p50_us = static_cast<double>(r.latency.Percentile(50)) / 1e3;
    double p99_us = static_cast<double>(r.latency.Percentile(99)) / 1e3;
    std::printf("%7dx%-4d %14.0f %12.3f %12.1f %12.1f %12.1f\n", p.threads, p.concurrency,
                r.CommittedPerSecond(), r.OpsPerMicrosecond(), p50_us, p99_us, msgs_per_tx);
    if (auto* j = bench::Json()) {
      j->AddPoint({{"threads", p.threads},
                   {"concurrency", p.concurrency},
                   {"tx_per_sec", r.CommittedPerSecond()},
                   {"p50_us", p50_us},
                   {"p99_us", p99_us},
                   {"msgs_per_tx", msgs_per_tx},
                   {"dp_msgs_per_tx",
                    bench::DataPlaneMsgsPerTx(stats_before, cluster->fabric().stats(),
                                              committed)}});
    }
  }
  if (auto* j = bench::Json()) {
    j->Set("machines", kMachines);
    j->Set("subscribers", topts.subscribers);
  }
  bench::ReportMessageCounts(total_msgs, total_committed);
  bench::ReportWireBreakdown(measured_before, cluster->fabric().stats(), total_committed);
  bench::ReportPhaseLatencies(*cluster);
  bench::ReportSimEvents(cluster->sim().events_processed());
  std::printf("\nShape check: throughput grows with offered load, median latency\n"
              "stays low until the knee, then the p99 tail climbs steeply.\n");
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
