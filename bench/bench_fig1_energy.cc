// Figure 1: energy required to copy one GB from DRAM to SSD, versus the
// number of SSDs striped during the distributed-UPS save (section 2.1).
//
// Paper: ~110 J/GB with one SSD, falling toward ~40 J/GB at four SSDs
// because the per-save CPU energy (about 90 J) shrinks with save time.
// Also reproduces the cost analysis: battery energy at $0.005/J plus the
// reserved SSD capacity stays under 15% of the $12/GB DRAM cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/nvram/energy_model.h"

namespace farm {
namespace {

void Run() {
  bench::PrintHeader("Figure 1: energy to copy one GB from DRAM to SSD",
                     "110 J/GB @ 1 SSD down to ~40 J/GB @ 4 SSDs (paper)",
                     "analytical UPS model calibrated to the paper's prototype");
  UpsEnergyModel model;
  std::printf("%8s %12s %12s %14s %16s\n", "SSDs", "save_s/GB", "J/GB", "battery_$/GB",
              "total_nv_$/GB");
  for (int ssds = 1; ssds <= 4; ssds++) {
    std::printf("%8d %12.2f %12.1f %14.3f %16.3f\n", ssds, model.SaveSeconds(1.0, ssds),
                model.JoulesPerGb(ssds), model.BatteryDollarsPerGb(ssds),
                model.TotalDollarsPerGb(ssds));
  }
  std::printf("\nWorst case (1 SSD): $%.2f/GB battery + $%.2f/GB SSD reserve = %.1f%% of\n"
              "$12/GB DRAM (paper: <15%%), so treating all memory as NVRAM is viable.\n",
              model.BatteryDollarsPerGb(1), model.ssd_reserve_dollars_per_gb,
              model.TotalDollarsPerGb(1) / 12.0 * 100.0);
}

}  // namespace
}  // namespace farm

int main(int argc, char** argv) {
  farm::bench::BenchEnv env(argc, argv);
  farm::Run();
  return 0;
}
