// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the paper artifact it regenerates, the scaled-down
// parameters it runs with, and the measured series. Absolute numbers are
// not expected to match the paper's 90-machine InfiniBand testbed; the
// shapes (who wins, by what factor, where the knees/crossovers are) should.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>  // farmlint: allow(wall-clock): benches report real elapsed time
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cluster.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/driver.h"

namespace farm {
namespace bench {

// ---- Structured bench output (--json-out=<path>) ----
//
// With --json-out, a bench writes a single JSON object that
// tools/bench/run_bench_suite merges into BENCH_core.json (the committed
// performance-trajectory file). Keys keep insertion order so the output is
// byte-stable run to run; numeric formatting is locale-independent printf.
class JsonReport {
 public:
  void Set(const std::string& key, double v) { scalars_.emplace_back(key, Num(v)); }
  void Set(const std::string& key, uint64_t v) {
    scalars_.emplace_back(key, std::to_string(v));
  }
  void Set(const std::string& key, int v) { scalars_.emplace_back(key, std::to_string(v)); }
  void SetString(const std::string& key, const std::string& v) {
    scalars_.emplace_back(key, "\"" + v + "\"");
  }
  // Appends one row to the "points" array (a sweep step, one per load level).
  void AddPoint(std::vector<std::pair<std::string, double>> kv) {
    std::vector<std::pair<std::string, std::string>> row;
    row.reserve(kv.size());
    for (auto& [k, v] : kv) {
      row.emplace_back(k, Num(v));
    }
    points_.push_back(std::move(row));
  }

  std::string ToJson() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : scalars_) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + k + "\":" + v;
    }
    if (!points_.empty()) {
      if (!first) {
        out += ",";
      }
      out += "\"points\":[";
      for (size_t i = 0; i < points_.size(); i++) {
        if (i > 0) {
          out += ",";
        }
        out += "{";
        for (size_t j = 0; j < points_[i].size(); j++) {
          if (j > 0) {
            out += ",";
          }
          out += "\"" + points_[i][j].first + "\":" + points_[i][j].second;
        }
        out += "}";
      }
      out += "]";
    }
    out += "}";
    return out;
  }

 private:
  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::vector<std::pair<std::string, std::string>>> points_;
};

namespace internal {
inline JsonReport*& GlobalJson() {
  static JsonReport* report = nullptr;
  return report;
}
}  // namespace internal

// The active report, or nullptr when the bench ran without --json-out.
// Benches guard their reporting with `if (auto* j = bench::Json())`.
inline JsonReport* Json() { return internal::GlobalJson(); }

namespace internal {
inline uint64_t& SimEventsProcessed() {
  static uint64_t n = 0;
  return n;
}
inline bool& BatchFlag() {
  static bool batch = false;
  return batch;
}
inline SimDuration& BatchQuantum() {
  static SimDuration q = 0;  // 0 = keep the Messenger::Options default
  return q;
}
inline bool& BackoffFlag() {
  static bool backoff = false;
  return backoff;
}
}  // namespace internal

// True when the bench ran with --batch: DefaultClusterOptions then enables
// data-plane batching, and benches record the mode in their JSON output.
inline bool BatchRequested() { return internal::BatchFlag(); }
// Flush-quantum override from --batch-quantum=<ns> (0 = messenger default).
inline SimDuration BatchQuantumRequested() { return internal::BatchQuantum(); }
// True when the bench ran with --backoff: DefaultClusterOptions then enables
// adaptive lock-conflict backoff in the coordinators.
inline bool BackoffRequested() { return internal::BackoffFlag(); }

// Records how many simulator events the bench's measured body pumped. The
// BenchEnv destructor divides this by wall time to derive events_per_sec,
// the hot-path throughput number the CI regression gate tracks.
inline void ReportSimEvents(uint64_t events) { internal::SimEventsProcessed() = events; }

// Per-bench observability flags, parsed from argv before farm::Run():
//   --trace-out=<path>    write a Chrome trace-event JSON of the run
//   --metrics-out=<path>  dump every cluster's metrics registry on teardown
//   --flight-out=<path>   append every cluster's flight-recorder postmortem
//   --trace-no-net        omit per-operation fabric events (smaller traces)
//   --json-out=<path>     write a machine-readable result summary (JSON)
//   --batch               enable data-plane batching (message coalescing +
//                         doorbell batching) for clusters built with
//                         DefaultClusterOptions
//   --batch-quantum=<ns>  override the batch flush quantum (with --batch)
//   --backoff             enable adaptive lock-conflict backoff
// Construct one at the top of main(); the destructor writes the trace after
// the bench body finishes. Unrecognized arguments are ignored, so benches
// keep their zero-flag invocations.
class BenchEnv {
 public:
  BenchEnv(int argc, char** argv) {
    bool capture_net = true;
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        trace_path_ = arg + 12;
      } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
        metrics::SetDumpOnDestroy(arg + 14);
      } else if (std::strncmp(arg, "--flight-out=", 13) == 0) {
        flight::SetDumpOnDestroy(arg + 13);
      } else if (std::strcmp(arg, "--trace-no-net") == 0) {
        capture_net = false;
      } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
        json_path_ = arg + 11;
      } else if (std::strcmp(arg, "--batch") == 0) {
        internal::BatchFlag() = true;
      } else if (std::strncmp(arg, "--batch-quantum=", 16) == 0) {
        internal::BatchQuantum() = static_cast<SimDuration>(std::strtoull(arg + 16, nullptr, 10));
      } else if (std::strcmp(arg, "--backoff") == 0) {
        internal::BackoffFlag() = true;
      }
    }
    if (!trace_path_.empty()) {
      trace::Tracer::Options topts;
      topts.capture_net = capture_net;
      tracer_ = std::make_unique<trace::Tracer>(topts);
      trace::SetGlobal(tracer_.get());
    }
    if (!json_path_.empty()) {
      report_ = std::make_unique<JsonReport>();
      internal::GlobalJson() = report_.get();
      internal::SimEventsProcessed() = 0;
    }
    // farmlint: allow(wall-clock): benches measure real elapsed time
    wall_start_ = std::chrono::steady_clock::now();
  }

  ~BenchEnv() {
    // farmlint: allow(wall-clock): benches measure real elapsed time
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                wall_start_)
                      .count();
    // Cluster registries dump themselves on destruction; the process-wide
    // default registry never dies, so flush it here (no-op without
    // --metrics-out or when nothing registered in it).
    if (metrics::Registry::Default().CellCount() > 0) {
      metrics::AppendDump(metrics::Registry::Default(), "default registry");
    }
    if (tracer_ != nullptr) {
      trace::SetGlobal(nullptr);
      Status s = tracer_->WriteFile(trace_path_);
      if (s.ok()) {
        std::printf("trace: wrote %zu events to %s\n", tracer_->event_count(),
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      }
    }
    if (report_ != nullptr) {
      report_->Set("wall_seconds", wall);
      uint64_t events = internal::SimEventsProcessed();
      if (events > 0 && wall > 0) {
        report_->Set("sim_events", events);
        report_->Set("events_per_sec", static_cast<double>(events) / wall);
      }
      std::FILE* f = std::fopen(json_path_.c_str(), "w");
      if (f != nullptr) {
        std::string json = report_->ToJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("json: wrote results to %s\n", json_path_.c_str());
      } else {
        std::fprintf(stderr, "json: cannot open %s\n", json_path_.c_str());
      }
      internal::GlobalJson() = nullptr;
    }
  }

  BenchEnv(const BenchEnv&) = delete;
  BenchEnv& operator=(const BenchEnv&) = delete;

 private:
  std::string trace_path_;
  std::string json_path_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<JsonReport> report_;
  // farmlint: allow(wall-clock): benches measure real elapsed time
  std::chrono::steady_clock::time_point wall_start_;
};

// Emits the commit-phase latency breakdown into the JSON report:
// phase_<name>_count / _p50_us / _p95_us / _p99_us for each protocol phase,
// read from the cluster's tx_phase_ns histograms. run_bench_suite fails the
// transactional benches when these rows are missing from the merged JSON.
inline void ReportPhaseLatencies(Cluster& cluster) {
  JsonReport* j = Json();
  if (j == nullptr) {
    return;
  }
  for (int p = 0; p < flight::kNumPhases; p++) {
    const char* name = flight::PhaseName(static_cast<flight::Phase>(p));
    const Histogram& h =
        cluster.metrics_registry()
            .GetHistogram("tx_phase_ns", {{"phase", name}})
            .histogram();
    std::string prefix = std::string("phase_") + name;
    j->Set(prefix + "_count", h.count());
    j->Set(prefix + "_p50_us", static_cast<double>(h.Percentile(50)) / 1e3);
    j->Set(prefix + "_p95_us", static_cast<double>(h.Percentile(95)) / 1e3);
    j->Set(prefix + "_p99_us", static_cast<double>(h.Percentile(99)) / 1e3);
  }
}

inline ClusterOptions DefaultClusterOptions(int machines, uint64_t seed = 1) {
  ClusterOptions opts;
  opts.machines = machines;
  opts.zk_replicas = 3;
  opts.seed = seed;
  opts.node.worker_threads = 2;
  opts.node.region_size = 1 << 20;
  opts.node.block_size = 64 << 10;
  opts.node.lease.duration = 10 * kMillisecond;
  opts.node.msgr.batch = BatchRequested();
  if (BatchQuantumRequested() > 0) {
    opts.node.msgr.batch_flush_delay = BatchQuantumRequested();
  }
  opts.node.adaptive_backoff = BackoffRequested();
  return opts;
}

// Emits wire-level message accounting into the JSON report: total fabric
// messages, committed transactions, and the per-committed-tx message count
// the batching ablation tracks (fig 7's msgs/tx axis). `msgs` and
// `committed` are deltas over the measured window.
inline void ReportMessageCounts(uint64_t msgs, uint64_t committed) {
  JsonReport* j = Json();
  if (j == nullptr) {
    return;
  }
  j->SetString("batch_mode", BatchRequested() ? "on" : "off");
  j->Set("wire_messages", msgs);
  j->Set("committed_txs", committed);
  if (committed > 0) {
    j->Set("msgs_per_tx", static_cast<double>(msgs) / static_cast<double>(committed));
  }
}

// Data-plane messages per committed transaction between two FabricStats
// snapshots: ring writes + RPC request/response messages + datagrams. These
// are the sends per-destination coalescing can merge; one-sided READs are
// excluded because a read has no remote send to merge.
inline double DataPlaneMsgsPerTx(const FabricStats& before, const FabricStats& after,
                                 uint64_t committed) {
  if (committed == 0) {
    return 0.0;
  }
  double n = static_cast<double>(committed);
  return (static_cast<double>(after.rdma_writes - before.rdma_writes) +
          2.0 * static_cast<double>(after.rpcs - before.rpcs) +
          static_cast<double>(after.datagrams - before.datagrams)) / n;
}

// Per-category wire-op deltas over the measured windows, normalized per
// committed transaction. `before`/`after` are FabricStats snapshots taken
// around the measured region (copy = snapshot).
inline void ReportWireBreakdown(const FabricStats& before, const FabricStats& after,
                                uint64_t committed) {
  JsonReport* j = Json();
  if (j == nullptr || committed == 0) {
    return;
  }
  double n = static_cast<double>(committed);
  double reads = static_cast<double>(after.rdma_reads - before.rdma_reads) / n;
  double writes = static_cast<double>(after.rdma_writes - before.rdma_writes) / n;
  double rpc_msgs = 2.0 * static_cast<double>(after.rpcs - before.rpcs) / n;
  double dgrams = static_cast<double>(after.datagrams - before.datagrams) / n;
  j->Set("reads_per_tx", reads);
  j->Set("writes_per_tx", writes);
  j->Set("rpc_msgs_per_tx", rpc_msgs);
  j->Set("doorbells_per_tx", static_cast<double>(after.doorbells - before.doorbells) / n);
  // Data-plane messages: the sends the batching layer can coalesce (ring
  // writes, RPC request/response pairs, datagrams). One-sided READs are not
  // messages -- a read is a NIC-to-memory fetch with no remote send, and no
  // amount of coalescing merges two reads into one wire transfer -- so the
  // batched-vs-unbatched gate compares this number, not total verbs.
  j->Set("dp_msgs_per_tx", writes + rpc_msgs + dgrams);
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& scaling) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  reproduces: %s\n", paper_ref.c_str());
  std::printf("  scaling:    %s\n", scaling.c_str());
  std::printf("==============================================================\n");
}

// Steps until pred() or timeout; returns whether pred held.
template <typename Pred>
bool StepUntil(Cluster& cluster, Pred pred, SimDuration timeout) {
  SimTime deadline = cluster.sim().Now() + timeout;
  while (!pred() && cluster.sim().Now() < deadline) {
    if (!cluster.sim().Step()) {
      break;
    }
  }
  return pred();
}

// Runs a coroutine to completion against the cluster's simulator.
template <typename T>
std::optional<T> AwaitTask(Cluster& cluster, Task<T> task, SimDuration timeout = 10 * kSecond) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrapper = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrapper(std::move(task), result));
  StepUntil(cluster, [&]() { return result->has_value(); }, timeout);
  return *result;
}

// Time (relative to `from`) at which per-ms throughput first returns to
// `fraction` of `baseline_per_ms` and stays there for `sustain_ms` intervals.
inline SimTime TimeToRecover(const TimeSeries& series, SimTime from, double baseline_per_ms,
                             double fraction, int sustain_ms = 5) {
  const auto& buckets = series.intervals();
  size_t start = static_cast<size_t>(from / series.interval_ns());
  double target = baseline_per_ms * fraction;
  for (size_t i = start; i + static_cast<size_t>(sustain_ms) < buckets.size(); i++) {
    bool sustained = true;
    for (int j = 0; j < sustain_ms; j++) {
      if (static_cast<double>(buckets[i + static_cast<size_t>(j)]) < target) {
        sustained = false;
        break;
      }
    }
    if (sustained) {
      SimTime at = i * series.interval_ns();
      return at > from ? at - from : 0;  // clamp: recovered within the bucket
    }
  }
  return kSimTimeNever;
}

inline double MsOrDash(SimTime t) {
  return t == kSimTimeNever ? -1.0 : static_cast<double>(t) / 1e6;
}

}  // namespace bench
}  // namespace farm

#endif  // BENCH_BENCH_UTIL_H_
// NOTE: appended helpers for the failure-timeline benches (figures 9-15).
#ifndef BENCH_BENCH_UTIL_TIMELINE_
#define BENCH_BENCH_UTIL_TIMELINE_

namespace farm {
namespace bench {

struct TimelineResult {
  SimTime kill_time = 0;
  double baseline_per_ms = 0;      // committed tx/ms before the failure
  SimTime suspect = kSimTimeNever;        // relative to kill
  SimTime probe = kSimTimeNever;
  SimTime zookeeper = kSimTimeNever;
  SimTime config_commit = kSimTimeNever;
  SimTime all_active = kSimTimeNever;
  SimTime data_rec_start = kSimTimeNever;
  SimTime recover_80 = kSimTimeNever;     // throughput back to 80% of baseline
  SimTime recover_peak = kSimTimeNever;   // back to ~95%
  SimTime data_rec_done = kSimTimeNever;  // last region re-replicated
  uint64_t regions_rereplicated = 0;
  uint64_t recovering_txs = 0;
  std::shared_ptr<DriverResult> series;
};

// Runs `fn` under load, kills `victims` at kill_after, keeps running for
// run_after_kill, and extracts the figure-9-style milestones.
inline TimelineResult RunFailureTimeline(Cluster& cluster, WorkloadFn fn,
                                         DriverOptions dopts,
                                         std::vector<MachineId> victims,
                                         SimDuration kill_after,
                                         SimDuration run_after_kill) {
  TimelineResult out;
  cluster.ClearMilestones();
  DriverRun run = StartWorkers(cluster, std::move(fn), dopts);
  cluster.RunFor(dopts.warmup + kill_after);
  out.kill_time = cluster.sim().Now();
  for (MachineId v : victims) {
    cluster.Kill(v);
  }
  cluster.RunFor(run_after_kill);
  StopWorkers(cluster, run);
  out.series = run.result;

  out.baseline_per_ms = run.result->throughput.AverageRate(
      run.result->measure_start, out.kill_time - kMillisecond);
  auto rel = [&](const char* name) {
    SimTime t = cluster.MilestoneAfter(name, out.kill_time);
    return t == kSimTimeNever ? kSimTimeNever : t - out.kill_time;
  };
  out.suspect = rel("suspect");
  out.probe = rel("probe");
  out.zookeeper = rel("zookeeper");
  out.config_commit = rel("config-commit");
  out.all_active = rel("all-active");
  out.data_rec_start = rel("data-rec-start");
  out.recover_80 =
      TimeToRecover(run.result->throughput, out.kill_time, out.baseline_per_ms, 0.8);
  out.recover_peak =
      TimeToRecover(run.result->throughput, out.kill_time, out.baseline_per_ms, 0.95);
  out.regions_rereplicated = cluster.regions_rereplicated();
  if (!cluster.rereplication_times().empty()) {
    out.data_rec_done = cluster.rereplication_times().back() - out.kill_time;
  }
  out.recovering_txs = cluster.TotalStats().recovering_txs_seen;
  return out;
}

inline void PrintTimeline(const TimelineResult& r, SimDuration window_before = 20 * kMillisecond,
                          SimDuration window_after = 120 * kMillisecond) {
  std::printf("baseline: %.1f tx/ms before the failure\n", r.baseline_per_ms);
  std::printf("milestones after failure: suspect=%.1fms probe=%.1fms zookeeper=%.1fms\n"
              "  config-commit=%.1fms all-active=%.1fms data-rec-start=%.1fms\n",
              MsOrDash(r.suspect), MsOrDash(r.probe), MsOrDash(r.zookeeper),
              MsOrDash(r.config_commit), MsOrDash(r.all_active), MsOrDash(r.data_rec_start));
  std::printf("throughput back to 80%% in %.1f ms, to ~peak in %.1f ms\n",
              MsOrDash(r.recover_80), MsOrDash(r.recover_peak));
  std::printf("data recovery: %llu regions re-replicated, done at %.1f ms\n",
              static_cast<unsigned long long>(r.regions_rereplicated),
              MsOrDash(r.data_rec_done));
  std::printf("recovering transactions: %llu\n",
              static_cast<unsigned long long>(r.recovering_txs));
  std::printf("\nper-ms committed throughput around the failure (t=0 is the kill):\n");
  const auto& buckets = r.series->throughput.intervals();
  int64_t kill_ms = static_cast<int64_t>(r.kill_time / kMillisecond);
  int64_t from = kill_ms - static_cast<int64_t>(window_before / kMillisecond);
  int64_t to = kill_ms + static_cast<int64_t>(window_after / kMillisecond);
  for (int64_t ms = std::max<int64_t>(from, 0); ms < to; ms += 4) {
    uint64_t v = 0;
    for (int64_t j = ms; j < ms + 4 && j < static_cast<int64_t>(buckets.size()); j++) {
      v += buckets[static_cast<size_t>(j)];
    }
    std::printf("  t=%+5lldms  %6.1f tx/ms\n", static_cast<long long>(ms - kill_ms),
                static_cast<double>(v) / 4.0);
  }
}

}  // namespace bench
}  // namespace farm

#endif  // BENCH_BENCH_UTIL_TIMELINE_
