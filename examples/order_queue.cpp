// order_queue: an ordered work queue on the FaRM B-tree -- producers enqueue
// timestamped jobs, consumers atomically claim the oldest pending job, and
// range scans provide a consistent dashboard. Shows fence-key traversal and
// transactional range operations (the machinery behind TPC-C's new-order
// queue and order-line indexes).
//
//   build/examples/order_queue
#include <cstdio>

#include "src/core/cluster.h"
#include "src/ds/btree.h"

namespace farm {
namespace {

template <typename T>
T Await(Cluster& cluster, Task<T> task) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrap = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrap(std::move(task), result));
  while (!result->has_value()) {
    FARM_CHECK(cluster.sim().Step()) << "simulation ran dry";
  }
  return **result;
}

// Claims (removes) the smallest-key job; returns its id, or 0 only when the
// queue is truly empty. Conflicts with racing consumers abort and retry with
// a small backoff -- OCC guarantees each job is claimed exactly once.
Task<uint64_t> ClaimOldest(Cluster* cluster, BTree queue, MachineId node) {
  for (;;) {
    auto tx = cluster->node(node).Begin(0);
    auto oldest = co_await queue.Scan(*tx, 0, UINT64_MAX, 1);
    if (oldest.ok() && oldest->empty()) {
      if ((co_await tx->Commit()).ok()) {
        co_return 0;  // validated-empty: safe to stop
      }
    } else if (oldest.ok()) {
      uint64_t key = (*oldest)[0].first;
      uint64_t job = (*oldest)[0].second;
      Status s = co_await queue.Remove(*tx, key);
      if (s.ok() && (co_await tx->Commit()).ok()) {
        co_return job;
      }
    }
    co_await SleepFor(cluster->sim(), 5 * kMicrosecond);  // backoff and retry
  }
}

void Run() {
  std::printf("== order_queue example ==\n\n");
  ClusterOptions options;
  options.machines = 4;
  options.node.worker_threads = 2;
  options.node.region_size = 512 << 10;
  Cluster cluster(options);
  cluster.Start();
  cluster.RunFor(5 * kMillisecond);

  BTree queue = Await(cluster, [](Cluster* c) -> Task<StatusOr<BTree>> {
                        co_return co_await BTree::Create(c->node(0), BTree::Options{}, 0);
                      }(&cluster))
                    .value();

  // Producers on two machines enqueue 40 jobs with interleaved timestamps.
  auto produce = [](Cluster* c, BTree q, MachineId m, uint64_t base, int n) -> Task<int> {
    int ok = 0;
    for (int i = 0; i < n; i++) {
      uint64_t ts = base + static_cast<uint64_t>(i) * 10;  // "timestamp" key
      uint64_t job_id = (m + 1) * 1000 + static_cast<uint64_t>(i);  // 0 = "empty" sentinel
      for (int attempt = 0; attempt < 8; attempt++) {
        auto tx = c->node(m).Begin(0);
        Status s = co_await q.Insert(*tx, ts, job_id);
        if (s.ok() && (co_await tx->Commit()).ok()) {
          ok++;
          break;
        }
      }
    }
    co_return ok;
  };
  int p1 = Await(cluster, produce(&cluster, queue, 0, 100, 20));
  int p2 = Await(cluster, produce(&cluster, queue, 1, 105, 20));
  std::printf("producers enqueued %d + %d jobs\n", p1, p2);

  // Dashboard: a consistent ordered snapshot of the first 10 pending jobs.
  auto dash = Await(cluster, [](Cluster* c, BTree q) -> Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> {
                      auto tx = c->node(2).Begin(0);
                      auto r = co_await q.Scan(*tx, 0, UINT64_MAX, 10);
                      if (!r.ok()) {
                        co_return r.status();
                      }
                      Status s = co_await tx->Commit();
                      if (!s.ok()) {
                        co_return s;
                      }
                      co_return *r;
                    }(&cluster, queue));
  std::printf("\noldest pending jobs (timestamp -> job id):\n");
  for (const auto& [ts, job] : *dash) {
    std::printf("  t=%llu job=%llu\n", static_cast<unsigned long long>(ts),
                static_cast<unsigned long long>(job));
  }

  // Two consumers race to drain the queue; every job is claimed exactly once.
  auto claimed = std::make_shared<std::vector<uint64_t>>();
  auto done = std::make_shared<int>(0);
  auto consumer = [](Cluster* c, BTree q, MachineId m, std::shared_ptr<std::vector<uint64_t>> out,
                     std::shared_ptr<int> fin) -> Task<void> {
    for (;;) {
      uint64_t job = co_await ClaimOldest(c, q, m);
      if (job == 0) {
        break;
      }
      out->push_back(job);
    }
    (*fin)++;
  };
  Spawn(consumer(&cluster, queue, 2, claimed, done));
  Spawn(consumer(&cluster, queue, 3, claimed, done));
  while (*done < 2) {
    FARM_CHECK(cluster.sim().Step());
  }

  std::set<uint64_t> unique(claimed->begin(), claimed->end());
  std::printf("\nconsumers drained %zu jobs, %zu unique -> %s\n", claimed->size(),
              unique.size(),
              claimed->size() == unique.size() && claimed->size() == 40
                  ? "exactly-once"
                  : "DUPLICATES/LOSS!");
}

}  // namespace
}  // namespace farm

int main() {
  farm::Run();
  return 0;
}
