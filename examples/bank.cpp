// Bank: concurrent transfers between accounts stored in a FaRM hash table,
// with a machine failure injected mid-run. Demonstrates the property the
// paper's title promises: strict serializability AND availability -- the
// total balance is conserved through the crash.
//
//   build/examples/bank
#include <cstdio>

#include "src/core/cluster.h"
#include "src/ds/hashtable.h"

namespace farm {
namespace {

constexpr int kAccounts = 32;
constexpr uint64_t kInitialBalance = 1000;
constexpr int kWorkers = 8;
constexpr int kTransfersPerWorker = 150;

uint64_t BalanceOf(const std::vector<uint8_t>& row) {
  uint64_t v = 0;
  std::memcpy(&v, row.data(), 8);
  return v;
}

std::vector<uint8_t> BalanceRow(uint64_t v) {
  std::vector<uint8_t> row(16, 0);
  std::memcpy(row.data(), &v, 8);
  return row;
}

Task<void> TransferWorker(Cluster* cluster, HashTable accounts, int worker,
                          std::shared_ptr<int> done) {
  Pcg32 rng(static_cast<uint64_t>(worker) * 101 + 7);
  for (int i = 0; i < kTransfersPerWorker; i++) {
    // Run from any live machine (workers migrate away from dead ones).
    MachineId node = kInvalidMachine;
    for (int probe = 0; probe < cluster->num_machines(); probe++) {
      MachineId cand = static_cast<MachineId>((worker + probe) % cluster->num_machines());
      if (cluster->machine(cand).alive()) {
        node = cand;
        break;
      }
    }
    uint64_t from = rng.Uniform(kAccounts) + 1;
    uint64_t to = rng.Uniform(kAccounts) + 1;
    if (from == to) {
      continue;
    }
    auto tx = cluster->node(node).Begin(worker % 2);
    auto vf = co_await accounts.Get(*tx, from);
    auto vt = co_await accounts.Get(*tx, to);
    if (!vf.ok() || !vt.ok() || !vf->has_value() || !vt->has_value()) {
      continue;  // transient failure; just retry with the next iteration
    }
    uint64_t bf = BalanceOf(**vf);
    uint64_t bt = BalanceOf(**vt);
    uint64_t amount = rng.Uniform(100) + 1;
    if (bf < amount) {
      continue;  // insufficient funds
    }
    (void)co_await accounts.Put(*tx, from, BalanceRow(bf - amount));
    (void)co_await accounts.Put(*tx, to, BalanceRow(bt + amount));
    (void)co_await tx->Commit();  // aborts on conflict; money moves atomically
  }
  (*done)++;
}

void Run() {
  std::printf("== bank example: transfers under failure ==\n\n");
  ClusterOptions options;
  options.machines = 5;
  options.node.worker_threads = 2;
  options.node.region_size = 256 << 10;
  Cluster cluster(options);
  cluster.Start();
  cluster.RunFor(5 * kMillisecond);

  // Create the accounts table and fund every account.
  auto setup = [](Cluster* c) -> Task<StatusOr<HashTable>> {
    HashTable::Options o;
    o.buckets = 64;
    o.value_size = 16;
    auto table = co_await HashTable::Create(c->node(0), o, 0);
    if (!table.ok()) {
      co_return table.status();
    }
    for (uint64_t a = 1; a <= kAccounts; a++) {
      for (int attempt = 0; attempt < 5; attempt++) {
        auto tx = c->node(0).Begin(0);
        (void)co_await table->Put(*tx, a, BalanceRow(kInitialBalance));
        if ((co_await tx->Commit()).ok()) {
          break;
        }
      }
    }
    co_return *table;
  };
  auto table = std::make_shared<std::optional<StatusOr<HashTable>>>();
  auto wrap = [](Task<StatusOr<HashTable>> t,
                 std::shared_ptr<std::optional<StatusOr<HashTable>>> out) -> Task<void> {
    out->emplace(co_await std::move(t));
  };
  Spawn(wrap(setup(&cluster), table));
  while (!table->has_value()) {
    cluster.sim().Step();
  }
  FARM_CHECK((*table)->ok());
  HashTable accounts = (*table)->value();
  std::printf("funded %d accounts with %llu each (total %llu)\n\n", kAccounts,
              static_cast<unsigned long long>(kInitialBalance),
              static_cast<unsigned long long>(kAccounts * kInitialBalance));

  // Run concurrent transfer workers; kill a machine partway through.
  auto done = std::make_shared<int>(0);
  for (int w = 0; w < kWorkers; w++) {
    Spawn(TransferWorker(&cluster, accounts, w, done));
  }
  cluster.RunFor(5 * kMillisecond);
  MachineId victim = cluster.node(0).config().Placement(accounts.regions()[0])->primary;
  std::printf("killing machine %u (a primary) while transfers are in flight...\n", victim);
  cluster.Kill(victim);
  while (*done < kWorkers) {
    FARM_CHECK(cluster.sim().Step()) << "simulation ran dry";
  }
  cluster.RunFor(200 * kMillisecond);  // let recovery finish

  // Audit: the total must be exactly conserved.
  auto audit = [](Cluster* c, HashTable t, MachineId node) -> Task<uint64_t> {
    uint64_t total = 0;
    for (uint64_t a = 1; a <= kAccounts; a++) {
      auto tx = c->node(node).Begin(0);
      auto v = co_await t.Get(*tx, a);
      if (v.ok() && v->has_value() && (co_await tx->Commit()).ok()) {
        total += BalanceOf(**v);
      }
    }
    co_return total;
  };
  MachineId reader = victim == 0 ? 1 : 0;
  auto total = std::make_shared<std::optional<uint64_t>>();
  auto wrap2 = [](Task<uint64_t> t, std::shared_ptr<std::optional<uint64_t>> out) -> Task<void> {
    out->emplace(co_await std::move(t));
  };
  Spawn(wrap2(audit(&cluster, accounts, reader), total));
  while (!total->has_value()) {
    FARM_CHECK(cluster.sim().Step());
  }

  uint64_t expected = kAccounts * kInitialBalance;
  std::printf("\naudit after crash + recovery: total = %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(**total),
              static_cast<unsigned long long>(expected),
              **total == expected ? "CONSERVED" : "VIOLATED!");
  NodeStats s = cluster.TotalStats();
  std::printf("committed=%llu conflict-aborts=%llu recovered-by-protocol=%llu\n",
              static_cast<unsigned long long>(s.tx_committed),
              static_cast<unsigned long long>(s.tx_aborted_lock + s.tx_aborted_validate),
              static_cast<unsigned long long>(s.tx_recovered_commit + s.tx_recovered_abort));
}

}  // namespace
}  // namespace farm

int main() {
  farm::Run();
  return 0;
}
