// Quickstart: boot a simulated FaRM cluster, run distributed transactions,
// kill a machine, and watch the data survive.
//
//   build/examples/quickstart
//
// The public API in a nutshell:
//   Cluster cluster(options); cluster.Start();
//   auto tx = cluster.node(m).Begin(thread);      // start a transaction
//   auto bytes = co_await tx->Read(addr, size);   // one-sided RDMA read
//   tx->Write(addr, new_bytes);                   // buffered write
//   Status s = co_await tx->Commit();             // strictly serializable
#include <cstdio>

#include "src/core/cluster.h"

namespace farm {
namespace {

// Runs a coroutine to completion on the cluster's simulator.
template <typename T>
T Await(Cluster& cluster, Task<T> task) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrap = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrap(std::move(task), result));
  while (!result->has_value()) {
    FARM_CHECK(cluster.sim().Step()) << "simulation ran dry";
  }
  return **result;
}

Task<Status> WriteGreeting(Node& node, GlobalAddr addr, const char* text) {
  auto tx = node.Begin(0);
  auto current = co_await tx->Read(addr, 32);  // version tracked for OCC
  if (!current.ok()) {
    co_return current.status();
  }
  std::vector<uint8_t> value(32, 0);
  std::snprintf(reinterpret_cast<char*>(value.data()), 32, "%s", text);
  (void)tx->Write(addr, value);
  co_return co_await tx->Commit();
}

Task<StatusOr<std::string>> ReadGreeting(Node& node, GlobalAddr addr) {
  // Single-object reads can skip the commit protocol entirely.
  auto bytes = co_await node.LockFreeRead(addr, 32, 0);
  if (!bytes.ok()) {
    co_return bytes.status();
  }
  co_return std::string(reinterpret_cast<const char*>(bytes->data()));
}

void Run() {
  std::printf("== FaRM quickstart ==\n\n");

  // 1. Boot a 5-machine cluster (plus a 3-replica coordination service).
  ClusterOptions options;
  options.machines = 5;
  options.node.worker_threads = 2;
  options.node.region_size = 256 << 10;
  Cluster cluster(options);
  cluster.Start();
  cluster.RunFor(5 * kMillisecond);
  std::printf("cluster up: %d machines, CM is machine %u\n", cluster.num_machines(),
              cluster.node(0).config().cm);

  // 2. Create a replicated region (1 primary + 2 backups, placed by the CM).
  auto rid = Await(cluster, [](Cluster* c) -> Task<StatusOr<RegionId>> {
    co_return co_await c->node(0).CreateRegion(64 << 10, /*object_stride=*/40,
                                               kInvalidRegion, 0);
  }(&cluster));
  FARM_CHECK(rid.ok());
  const RegionPlacement* placement = cluster.node(0).config().Placement(*rid);
  std::printf("region %u created: primary=machine %u, backups=machines %u,%u\n\n", *rid,
              placement->primary, placement->backups[0], placement->backups[1]);

  // 3. Commit a transaction from machine 1 and read it from machine 4.
  GlobalAddr addr{*rid, 0};
  Status ws = Await(cluster, WriteGreeting(cluster.node(1), addr, "hello, farm"));
  std::printf("transaction from machine 1: %s\n", ws.ToString().c_str());
  auto greeting = Await(cluster, ReadGreeting(cluster.node(4), addr));
  std::printf("lock-free read from machine 4: \"%s\"\n\n", greeting->c_str());

  // 4. Kill the region's primary; the lease expires, a backup is promoted,
  //    and the data keeps being served.
  std::printf("killing the primary (machine %u)...\n", placement->primary);
  MachineId victim = placement->primary;
  cluster.Kill(victim);
  cluster.RunFor(100 * kMillisecond);  // detection + reconfiguration + recovery

  MachineId reader = 0;
  while (reader == victim) {
    reader++;
  }
  auto after = Await(cluster, ReadGreeting(cluster.node(reader), addr));
  const RegionPlacement* p2 = cluster.node(reader).config().Placement(*rid);
  std::printf("after recovery: primary is machine %u; data reads \"%s\"\n",
              p2->primary, after->c_str());
  std::printf("configuration advanced to id %llu with %zu machines\n",
              static_cast<unsigned long long>(cluster.node(reader).config().id),
              cluster.node(reader).config().machines.size());

  // 5. And we can still write.
  Status ws2 = Await(cluster, WriteGreeting(cluster.node(reader), addr, "still here"));
  std::printf("write after failure: %s\n", ws2.ToString().c_str());
}

}  // namespace
}  // namespace farm

int main() {
  farm::Run();
  return 0;
}
