// kv_store: a replicated key-value store on the FaRM hash table, showing
// the three read paths the paper describes (section 3):
//   - lock-free reads: single-object lookups, one RDMA read, no commit phase
//   - transactional reads: multi-key consistent snapshots via validation
//   - transactional writes: full commit protocol
//
//   build/examples/kv_store
#include <cstdio>

#include "src/core/cluster.h"
#include "src/ds/hashtable.h"

namespace farm {
namespace {

template <typename T>
T Await(Cluster& cluster, Task<T> task) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrap = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrap(std::move(task), result));
  while (!result->has_value()) {
    FARM_CHECK(cluster.sim().Step()) << "simulation ran dry";
  }
  return **result;
}

std::vector<uint8_t> Value(const std::string& s) {
  std::vector<uint8_t> v(32, 0);
  std::snprintf(reinterpret_cast<char*>(v.data()), 32, "%s", s.c_str());
  return v;
}

std::string AsString(const std::vector<uint8_t>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()));
}

void Run() {
  std::printf("== kv_store example ==\n\n");
  ClusterOptions options;
  options.machines = 4;
  options.node.worker_threads = 2;
  options.node.region_size = 512 << 10;
  Cluster cluster(options);
  cluster.Start();
  cluster.RunFor(5 * kMillisecond);

  HashTable::Options ht;
  ht.buckets = 1024;
  ht.value_size = 32;
  HashTable store = Await(cluster, [](Cluster* c, HashTable::Options o) -> Task<StatusOr<HashTable>> {
                            co_return co_await HashTable::Create(c->node(0), o, 0);
                          }(&cluster, ht))
                        .value();
  std::printf("store spans %zu regions across the cluster\n\n", store.regions().size());

  // Transactional writes from different machines.
  auto put = [](Cluster* c, HashTable t, MachineId m, uint64_t key,
                std::string val) -> Task<Status> {
    for (int attempt = 0; attempt < 5; attempt++) {
      auto tx = c->node(m).Begin(0);
      Status s = co_await t.Put(*tx, key, Value(val));
      if (!s.ok()) {
        co_return s;
      }
      s = co_await tx->Commit();
      if (s.code() != StatusCode::kAborted) {
        co_return s;
      }
    }
    co_return AbortedStatus("too many conflicts");
  };
  (void)Await(cluster, put(&cluster, store, 0, 100, "apple"));
  (void)Await(cluster, put(&cluster, store, 1, 200, "banana"));
  (void)Await(cluster, put(&cluster, store, 2, 300, "cherry"));
  std::printf("wrote 3 keys from 3 different machines\n");

  // Lock-free read: usually one one-sided RDMA read, no commit phase.
  auto v = Await(cluster, [](Cluster* c, HashTable t) -> Task<StatusOr<std::optional<std::vector<uint8_t>>>> {
                   co_return co_await t.LockFreeGet(c->node(3), 200, 0);
                 }(&cluster, store));
  std::printf("lock-free get(200) from machine 3: \"%s\"\n", AsString(**v).c_str());

  // Multi-key transactional read: a consistent snapshot across keys --
  // validation at commit guarantees no writer slipped in between.
  auto snapshot = Await(cluster, [](Cluster* c, HashTable t) -> Task<StatusOr<std::string>> {
    auto tx = c->node(3).Begin(0);
    auto a = co_await t.Get(*tx, 100);
    auto b = co_await t.Get(*tx, 300);
    if (!a.ok() || !b.ok()) {
      co_return UnavailableStatus("read failed");
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return AsString(**a) + " + " + AsString(**b);
  }(&cluster, store));
  std::printf("consistent two-key snapshot: %s\n\n", snapshot->c_str());

  // Delete and verify.
  (void)Await(cluster, [](Cluster* c, HashTable t) -> Task<Status> {
    auto tx = c->node(1).Begin(0);
    Status s = co_await t.Remove(*tx, 200);
    if (!s.ok()) {
      co_return s;
    }
    co_return co_await tx->Commit();
  }(&cluster, store));
  auto gone = Await(cluster, [](Cluster* c, HashTable t) -> Task<StatusOr<std::optional<std::vector<uint8_t>>>> {
                      co_return co_await t.LockFreeGet(c->node(0), 200, 0);
                    }(&cluster, store));
  std::printf("after remove, get(200) -> %s\n", gone->has_value() ? "FOUND (bug!)" : "miss");

  // A tiny load phase + throughput taste.
  const int kKeys = 2000;
  (void)Await(cluster, [](Cluster* c, HashTable t) -> Task<Status> {
    for (uint64_t k = 1000; k < 1000 + kKeys; k += 16) {
      auto tx = c->node(0).Begin(0);
      for (uint64_t j = k; j < k + 16; j++) {
        (void)co_await t.Put(*tx, j, Value("v" + std::to_string(j)));
      }
      (void)co_await tx->Commit();
    }
    co_return OkStatus();
  }(&cluster, store));
  SimTime t0 = cluster.sim().Now();
  const int kLookups = 20000;
  int found = Await(cluster, [](Cluster* c, HashTable t) -> Task<int> {
    Pcg32 rng(9);
    int hits = 0;
    for (int i = 0; i < kLookups; i++) {
      uint64_t key = 1000 + rng.Uniform(kKeys);
      auto r = co_await t.LockFreeGet(c->node(static_cast<MachineId>(i % 4)), key, 0);
      if (r.ok() && r->has_value()) {
        hits++;
      }
    }
    co_return hits;
  }(&cluster, store));
  double us = static_cast<double>(cluster.sim().Now() - t0) / 1e3;
  std::printf("\n%d/%d sequential lookups in %.0f simulated us (%.2f us each)\n", found,
              kLookups, us, us / kLookups);
}

}  // namespace
}  // namespace farm

int main() {
  farm::Run();
  return 0;
}
